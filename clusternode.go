package palermo

// ClusterNode is one node of a multi-node oblivious store: it serves the
// shard ranges a placement manifest (internal/cluster) assigns to its
// address, speaks the same wire protocol as the standalone Server, and can
// surrender a shard to another node through live migration (DESIGN.md
// §11).
//
//	man, _ := cluster.Load("manifest.json")
//	node, _ := palermo.NewClusterNode(palermo.ClusterNodeConfig{
//	        Addr: "10.0.0.1:7070", Store: palermo.ShardedStoreConfig{...}}, man)
//	srv, _ := palermo.NewClusterServer(node, palermo.ServerConfig{})
//	go srv.ListenAndServe(node.Addr())
//
// Placement is public and deterministic (shard = id mod S, then the
// manifest's range lookup), so the cluster layer reveals nothing beyond
// what the standalone network layer already does; each node's backend
// still observes exactly one uniform path per access for the shards it
// owns. Requests that name a shard the node does not own at its current
// geometry epoch are rejected wholesale with a wrong-epoch status — a
// rejected frame executes none of its operations, so a stale client can
// always refetch the manifest and retry without loss or duplication.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"palermo/internal/backend"
	"palermo/internal/backend/blockfile"
	"palermo/internal/backend/wal"
	"palermo/internal/cluster"
	"palermo/internal/netserve"
	"palermo/internal/serve"
	"palermo/internal/shard"
	"palermo/internal/wire"
)

// ClusterNodeConfig configures one cluster node.
type ClusterNodeConfig struct {
	// Addr is this node's manifest identity: the address clients dial,
	// exactly as it appears in the placement manifest's ranges.
	Addr string
	// Store carries the per-shard engine configuration. Blocks and Shards
	// may be zero (adopted from the manifest); when set they must agree
	// with it. Key and Seed must be identical on every node of the
	// cluster: a migrated shard's sealed blocks and engine state only
	// decrypt (and its IV domain only stays collision-free) under the
	// cluster-wide key and per-shard derived seed.
	Store ShardedStoreConfig
}

// clusterSlot is one owned shard: its engine and the single-worker
// service that confines it to one goroutine.
type clusterSlot struct {
	sh  *shard.Shard
	svc *serve.Service
	be  backend.Backend // storage backend (nil for memory), kept for FsyncLag
}

// ClusterNode serves the manifest-assigned subset of a sharded store.
type ClusterNode struct {
	cfg    ShardedStoreConfig
	addr   string
	router shard.Router

	// mu is the geometry lock. Request paths hold it shared across
	// ownership-check + submit + wait, so a frame observes one placement:
	// it is either fully executed under the epoch it was checked against
	// or fully rejected. Migration cutover takes it exclusively only for
	// the instants that change placement (marking the shard migrating,
	// flipping the manifest).
	mu        sync.RWMutex
	man       *cluster.Manifest
	slots     map[int]*clusterSlot
	migrating map[int]bool
	closed    bool

	// retired keeps surrendered shards' drained services and final traces:
	// their service-layer stats and leaf-trace prefixes remain observable
	// after the shard lives elsewhere.
	retired       []*serve.Service
	retiredTraces []LeafTrace

	traceOn bool

	migMu  sync.Mutex // serializes outbound migrations
	sinkMu sync.Mutex // guards the inbound staging session
	sink   *migrateSink
}

// NewClusterNode opens the shards man assigns to cfg.Addr and starts
// their workers. With a durable store directory, a manifest persisted by
// a previous life of this node supersedes man when its epoch is higher —
// a node that committed a placement flip never restarts into a stale
// assignment.
func NewClusterNode(cfg ClusterNodeConfig, man *cluster.Manifest) (*ClusterNode, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("palermo: cluster node needs an address (its manifest identity)")
	}
	if man == nil {
		return nil, fmt.Errorf("palermo: cluster node needs a placement manifest")
	}
	if err := man.Validate(); err != nil {
		return nil, fmt.Errorf("palermo: %w", err)
	}
	sc := cfg.Store
	if sc.Dir != "" {
		if ns, err := cluster.LoadNodeState(sc.Dir); err != nil {
			return nil, fmt.Errorf("palermo: %w", err)
		} else if ns != nil {
			if ns.Addr != cfg.Addr {
				return nil, fmt.Errorf("palermo: directory %s belongs to node %s, not %s", sc.Dir, ns.Addr, cfg.Addr)
			}
			if ns.Manifest.Epoch > man.Epoch {
				man = ns.Manifest
			}
		}
	}
	// The manifest owns the geometry; an explicitly configured one must
	// agree with it.
	if sc.Blocks != 0 && sc.Blocks != man.Blocks {
		return nil, fmt.Errorf("palermo: configured %d blocks, manifest has %d", sc.Blocks, man.Blocks)
	}
	if sc.Shards != 0 && sc.Shards != int(man.Shards) {
		return nil, fmt.Errorf("palermo: configured %d shards, manifest has %d", sc.Shards, man.Shards)
	}
	sc.Blocks, sc.Shards = man.Blocks, int(man.Shards)
	if err := validatePipelineDepth(sc.PipelineDepth); err != nil {
		return nil, err
	}
	if err := validateTreeTopLevels(sc.TreeTopLevels); err != nil {
		return nil, err
	}
	if err := validateCryptoWorkers(sc.CryptoWorkers); err != nil {
		return nil, err
	}
	if err := validatePrefetchDepth(sc.PrefetchDepth); err != nil {
		return nil, err
	}
	engine, err := resolveEngine(sc.Engine, sc.Backend)
	if err != nil {
		return nil, err
	}
	sc.Backend = engine
	sc.Engine = ""
	sc.defaults()
	if err := validateStoreParams(sc.Blocks, sc.Key); err != nil {
		return nil, err
	}
	if sc.Shards < 1 || sc.Shards > MaxShards {
		return nil, fmt.Errorf("palermo: Shards must be in [1, %d], got %d", MaxShards, sc.Shards)
	}
	if sc.QueueDepth < 0 || sc.MaxBatch < 0 {
		return nil, fmt.Errorf("palermo: QueueDepth/MaxBatch must be >= 0")
	}
	router, err := shard.NewRouter(sc.Blocks, sc.Shards)
	if err != nil {
		return nil, fmt.Errorf("palermo: %w", err)
	}
	if sc.Backend == "" {
		if sc.Dir != "" {
			sc.Backend = BackendWAL
		} else {
			sc.Backend = BackendMemory
		}
	}
	if sc.Backend == BackendWAL || sc.Backend == BackendBlockfile {
		if sc.Dir == "" {
			return nil, fmt.Errorf("palermo: the %q engine requires Dir", sc.Backend)
		}
		// The directory manifest pins the GLOBAL geometry — every node of
		// the cluster agrees on (Blocks, Shards, engine) even though each
		// holds only its own shard subdirectories.
		if err := wal.EnsureManifest(sc.Dir, wal.Manifest{Version: wal.ManifestVersion, Blocks: sc.Blocks, Shards: sc.Shards, Engine: sc.Backend}); err != nil {
			return nil, fmt.Errorf("palermo: %w", err)
		}
	} else if sc.Backend != BackendMemory {
		return nil, fmt.Errorf("palermo: unknown Engine %q (want %q, %q, or %q)", sc.Backend, BackendMemory, BackendWAL, BackendBlockfile)
	}
	if err := validateSlotCacheBytes(sc.SlotCacheBytes, sc.Backend); err != nil {
		return nil, err
	}
	n := &ClusterNode{
		cfg:       sc,
		addr:      cfg.Addr,
		router:    router,
		man:       man,
		slots:     make(map[int]*clusterSlot),
		migrating: make(map[int]bool),
	}
	for _, s := range man.Owned(cfg.Addr) {
		slot, err := n.openSlot(s)
		if err != nil {
			n.Close()
			return nil, err
		}
		n.slots[s] = slot
	}
	if sc.Dir != "" {
		if err := n.persistLocked(); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// openShardBackend opens one shard sub-directory under the node's
// configured engine (nil for the in-memory engine).
func (n *ClusterNode) openShardBackend(dir string) (backend.Backend, error) {
	switch n.cfg.Backend {
	case BackendWAL:
		return wal.Open(dir, wal.Options{GroupCommit: n.cfg.GroupCommit, CommitDepth: n.cfg.PipelineDepth})
	case BackendBlockfile:
		return blockfile.Open(dir, blockfile.Options{GroupCommit: n.cfg.GroupCommit, CacheBytes: n.cfg.SlotCacheBytes})
	default:
		return nil, nil
	}
}

// openSlot builds one owned shard and its single-worker service, using
// the same assembly as NewShardedStore so a cluster of nodes is
// protocol-identical to one in-process ShardedStore.
func (n *ClusterNode) openSlot(s int) (*clusterSlot, error) {
	be, err := n.openShardBackend(n.shardDir(s))
	if err != nil {
		return nil, fmt.Errorf("palermo: shard %d: %w", s, err)
	}
	sh, err := shard.New(s, n.cfg.Shards, n.router.ShardBlocks(s), n.cfg.Key, shard.DeriveSeed(n.cfg.Seed, s), be)
	if err != nil {
		if be != nil {
			be.Close()
		}
		return nil, fmt.Errorf("palermo: %w", err)
	}
	slot := n.startSlot(sh)
	slot.be = be
	return slot, nil
}

// startSlot applies the store tuning to a built shard and starts its
// worker. The serve.Service has exactly one worker (index 0): shard
// confinement is per-slot here, where ShardedStore has one service whose
// worker i owns shard i.
func (n *ClusterNode) startSlot(sh *shard.Shard) *clusterSlot {
	applyCheckpointEvery(sh, n.cfg.CheckpointEvery)
	sh.SetTreeTopLevels(n.cfg.TreeTopLevels)
	if n.traceOn {
		sh.EnableTrace()
	}
	sh.EnablePipeline(n.cfg.PipelineDepth)
	sh.EnableCryptoPool(n.cfg.CryptoWorkers)
	if n.cfg.Prefetch {
		sh.EnablePrefetch(prefetchWindow(n.cfg.MaxBatch, n.cfg.PrefetchDepth, n.cfg.PosmapPrefetch))
	}
	svc := serve.New([]serve.Backend{stagedShard{sh}}, serve.Config{
		QueueDepth:        n.cfg.QueueDepth,
		MaxBatch:          n.cfg.MaxBatch,
		PipelineDepth:     n.cfg.PipelineDepth,
		Prefetch:          n.cfg.Prefetch,
		PrefetchDepth:     n.cfg.PrefetchDepth,
		PosmapPrefetch:    n.cfg.PosmapPrefetch,
		AdmissionDeadline: n.cfg.AdmissionDeadline,
	})
	return &clusterSlot{sh: sh, svc: svc}
}

func (n *ClusterNode) shardDir(s int) string {
	return filepath.Join(n.cfg.Dir, fmt.Sprintf("shard-%04d", s))
}

// persistLocked writes the node's durable cluster state. Callers hold mu
// (or have exclusive access during construction/teardown).
func (n *ClusterNode) persistLocked() error {
	if n.cfg.Dir == "" {
		return nil
	}
	ns := &cluster.NodeState{Addr: n.addr, Manifest: n.man}
	if err := ns.Save(n.cfg.Dir); err != nil {
		return fmt.Errorf("palermo: %w", err)
	}
	return nil
}

// Addr returns the node's manifest identity.
func (n *ClusterNode) Addr() string { return n.addr }

// Blocks returns the cluster store's total capacity in blocks.
func (n *ClusterNode) Blocks() uint64 { return n.router.Blocks() }

// Shards returns the cluster store's total shard count.
func (n *ClusterNode) Shards() int { return n.router.Shards() }

// Epoch returns the node's current geometry epoch.
func (n *ClusterNode) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.man.Epoch
}

// OwnedShards returns the shards this node currently serves, ascending.
func (n *ClusterNode) OwnedShards() []int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]int, 0, len(n.slots))
	for s := range n.slots {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Owns reports whether this node currently serves the shard id routes to.
func (n *ClusterNode) Owns(id uint64) bool {
	s, _ := n.router.Route(id)
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.slots[s]
	return ok && !n.migrating[s]
}

// wrongEpochLocked builds the typed rejection for a shard this node does
// not serve. Callers hold mu shared.
func (n *ClusterNode) wrongEpochLocked(s int) error {
	return fmt.Errorf("node %s does not own shard %d at epoch %d: %w", n.addr, s, n.man.Epoch, netserve.ErrWrongEpoch)
}

// slotFor resolves an id to its slot under the caller's read lock.
func (n *ClusterNode) slotFor(id uint64) (*clusterSlot, uint64, error) {
	s, local := n.router.Route(id)
	slot, ok := n.slots[s]
	if !ok || n.migrating[s] {
		return nil, 0, n.wrongEpochLocked(s)
	}
	return slot, local, nil
}

// Read fetches a block obliviously, if this node owns its shard.
func (n *ClusterNode) Read(id uint64) ([]byte, error) {
	if id >= n.Blocks() {
		return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, n.Blocks())
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	slot, local, err := n.slotFor(id)
	if err != nil {
		return nil, err
	}
	return slot.svc.Read(0, local)
}

// Write stores a block obliviously, if this node owns its shard.
func (n *ClusterNode) Write(id uint64, data []byte) error {
	if id >= n.Blocks() {
		return fmt.Errorf("palermo: block %d outside capacity %d", id, n.Blocks())
	}
	if len(data) != BlockSize {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(data))
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	slot, local, err := n.slotFor(id)
	if err != nil {
		return err
	}
	return slot.svc.Write(0, local, data)
}

// ReadBatch fetches many blocks in one frame-atomic unit: every id's
// shard must be owned here (else the whole batch is rejected untouched),
// and each owned shard's subset is submitted as one atomic batch with the
// §6 same-block dedup fan-out, exactly like ShardedStore.ReadBatch.
func (n *ClusterNode) ReadBatch(ids []uint64) ([][]byte, error) {
	out := make([][]byte, len(ids))
	for _, id := range ids {
		if id >= n.Blocks() {
			return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, n.Blocks())
		}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	perShard, perShardPos, err := n.partitionLocked(ids, nil)
	if err != nil {
		return nil, err
	}
	return out, n.waitBatchesLocked(perShard, perShardPos, out)
}

// WriteBatch stores blocks[i] under ids[i], frame-atomically (see
// ReadBatch).
func (n *ClusterNode) WriteBatch(ids []uint64, blocks [][]byte) error {
	if len(ids) != len(blocks) {
		return fmt.Errorf("palermo: WriteBatch got %d ids but %d blocks", len(ids), len(blocks))
	}
	for i, id := range ids {
		if id >= n.Blocks() {
			return fmt.Errorf("palermo: block %d outside capacity %d", id, n.Blocks())
		}
		if len(blocks[i]) != BlockSize {
			return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(blocks[i]))
		}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	perShard, perShardPos, err := n.partitionLocked(ids, blocks)
	if err != nil {
		return err
	}
	return n.waitBatchesLocked(perShard, perShardPos, nil)
}

// partitionLocked splits a batch into per-owned-shard sub-batches,
// rejecting the whole batch if ANY id routes to an unowned shard — the
// frame-atomicity contract behind the wrong-epoch status: a rejected
// frame executed nothing, so a client retry cannot duplicate operations.
func (n *ClusterNode) partitionLocked(ids []uint64, blocks [][]byte) (map[int][]serve.Req, map[int][]int, error) {
	perShard := make(map[int][]serve.Req)
	perShardPos := make(map[int][]int)
	for i, id := range ids {
		s, local := n.router.Route(id)
		if _, ok := n.slots[s]; !ok || n.migrating[s] {
			return nil, nil, n.wrongEpochLocked(s)
		}
		req := serve.Req{Op: serve.OpRead, ID: local}
		if blocks != nil {
			req = serve.Req{Op: serve.OpWrite, ID: local, Data: blocks[i]}
		}
		perShard[s] = append(perShard[s], req)
		perShardPos[s] = append(perShardPos[s], i)
	}
	return perShard, perShardPos, nil
}

// waitBatchesLocked submits every sub-batch to its slot's worker, then
// waits for all futures, scattering read payloads into out by original
// position (the ShardedStore.waitBatches discipline).
func (n *ClusterNode) waitBatchesLocked(perShard map[int][]serve.Req, perShardPos map[int][]int, out [][]byte) error {
	futs := make(map[int][]*serve.Future, len(perShard))
	var firstErr error
	for s, reqs := range perShard {
		fs, err := n.slots[s].svc.SubmitBatch(0, reqs)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		futs[s] = fs
	}
	for s, fs := range futs {
		for j, f := range fs {
			data, err := f.Wait()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if out != nil && err == nil {
				out[perShardPos[s][j]] = data
			}
		}
	}
	return firstErr
}

// Stats folds the node's service and engine counters into the wire
// snapshot, including the cluster placement fields of the handshake.
// Service-layer stats merge live AND retired services (a migrated-away
// shard's serving history stays visible here); engine counters travel
// with their shard, so Traffic sums live slots only.
func (n *ClusterNode) Stats() wire.Stats {
	n.mu.RLock()
	svcs := make([]*serve.Service, 0, len(n.slots)+len(n.retired))
	first := -1
	for s, slot := range n.slots {
		svcs = append(svcs, slot.svc)
		if first < 0 || s < first {
			first = s
		}
	}
	svcs = append(svcs, n.retired...)
	owned := uint32(len(n.slots))
	epoch := n.man.Epoch
	n.mu.RUnlock()

	ss := serve.MergeStats(svcs)
	tr := n.Traffic()
	if first < 0 {
		first = 0
	}
	return wire.Stats{
		Blocks:      n.Blocks(),
		Shards:      uint32(n.Shards()),
		Reads:       ss.Reads,
		Writes:      ss.Writes,
		DedupHits:   ss.DedupHits,
		Sheds:       ss.Sheds,
		ReadLat:     toWireLatency(ss.ReadLat),
		WriteLat:    toWireLatency(ss.WriteLat),
		QueueLat:    toWireLatency(ss.QueueLat),
		ExecLat:     toWireLatency(ss.ExecLat),
		EngineReads: tr.Reads, EngineWrites: tr.Writes,
		DRAMReads: tr.DRAMReads, DRAMWrites: tr.DRAMWrites,
		StashPeak:      uint32(tr.StashPeak),
		TreeTopHits:    tr.TreeTopHits,
		PrefetchIssued: tr.PrefetchIssued, PrefetchUsed: tr.PrefetchUsed, PrefetchStale: tr.PrefetchStale,
		Epoch: epoch, FirstShard: uint32(first), OwnedShards: owned,
	}
}

// ServiceStats merges the node's live and retired services into the same
// service-layer snapshot shape ShardedStore.Stats returns (completed
// operations, dedup hits, shed counts, latency summaries). It is the
// operability view of Stats without the wire/placement framing.
func (n *ClusterNode) ServiceStats() ServiceStats {
	n.mu.RLock()
	svcs := make([]*serve.Service, 0, len(n.slots)+len(n.retired))
	for _, slot := range n.slots {
		svcs = append(svcs, slot.svc)
	}
	svcs = append(svcs, n.retired...)
	n.mu.RUnlock()
	return serve.MergeStats(svcs)
}

// QueueDepths reports each owned shard's instantaneous request-queue
// occupancy, in ascending shard order (pair with OwnedShards for the
// shard indices). A point-in-time gauge, not a synchronized snapshot.
func (n *ClusterNode) QueueDepths() []int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	shards := make([]int, 0, len(n.slots))
	for s := range n.slots {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	out := make([]int, 0, len(shards))
	for _, s := range shards {
		out = append(out, n.slots[s].svc.QueueDepths()[0])
	}
	return out
}

// FsyncLag aggregates the owned shards' durable-backend fsync telemetry
// (count and cumulative wait); memory-backed nodes report (0, 0).
func (n *ClusterNode) FsyncLag() (count uint64, total time.Duration) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, slot := range n.slots {
		if fs, ok := slot.be.(interface {
			FsyncStats() (uint64, time.Duration)
		}); ok {
			c, d := fs.FsyncStats()
			count += c
			total += d
		}
	}
	return count, total
}

// Traffic aggregates the live slots' engine counters (each snapshotted on
// its own worker). A migrated shard's counters moved with it: its new
// owner reports them, so summing live slots across the cluster counts
// every access exactly once.
func (n *ClusterNode) Traffic() TrafficReport {
	n.mu.RLock()
	slots := make([]*clusterSlot, 0, len(n.slots))
	for _, slot := range n.slots {
		slots = append(slots, slot)
	}
	n.mu.RUnlock()
	var rep TrafficReport
	for _, slot := range slots {
		var c shard.Counters
		sh := slot.sh
		if err := slot.svc.Sync(0, func() { c = sh.Snapshot() }); err != nil {
			slot.svc.WaitClosed()
			c = sh.Snapshot()
		}
		rep.Reads += c.Reads
		rep.Writes += c.Writes
		rep.DRAMReads += c.DRAMReads
		rep.DRAMWrites += c.DRAMWrites
		rep.TreeTopHits += c.TreeTopHits
		rep.PrefetchIssued += c.PrefetchIssued
		rep.PrefetchUsed += c.PrefetchUsed
		rep.PrefetchStale += c.PrefetchStale
		if c.StashPeak > rep.StashPeak {
			rep.StashPeak = c.StashPeak
		}
	}
	if ops := rep.Reads + rep.Writes; ops > 0 {
		rep.AmplificationFactor = float64(rep.DRAMReads+rep.DRAMWrites) / float64(ops)
	}
	for _, slot := range slots {
		h, m := slotCacheStats(slot.be)
		rep.SlotCacheHits += h
		rep.SlotCacheMisses += m
	}
	return rep
}

// EnableTraces starts recording every owned shard's leaf trace (including
// shards acquired by later migrations). Call before serving starts.
func (n *ClusterNode) EnableTraces() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.traceOn = true
	for _, slot := range n.slots {
		slot.sh.EnableTrace()
	}
}

// LeafTraces snapshots the leaf traces of every shard this node served:
// live slots (copied on their own workers) plus the final traces of
// shards surrendered by migration. For a migrated shard, this node's
// trace is the prefix of the shard's protocol history; the new owner's
// trace is its continuation.
func (n *ClusterNode) LeafTraces() []LeafTrace {
	n.mu.RLock()
	type liveRef struct {
		s    int
		slot *clusterSlot
	}
	live := make([]liveRef, 0, len(n.slots))
	for s, slot := range n.slots {
		live = append(live, liveRef{s, slot})
	}
	out := append([]LeafTrace(nil), n.retiredTraces...)
	n.mu.RUnlock()
	for _, lr := range live {
		var lt LeafTrace
		sh := lr.slot.sh
		copyTrace := func() {
			lt.Shard = lr.s
			lt.NumLeaves = sh.DataLeaves()
			if tr := sh.Trace(); tr != nil {
				lt.Leaves = append([]uint64(nil), tr.Leaves...)
			}
		}
		if err := lr.slot.svc.Sync(0, copyTrace); err != nil {
			lr.slot.svc.WaitClosed()
			copyTrace()
		}
		out = append(out, lt)
	}
	return out
}

// Close drains and closes every owned shard's service (checkpointing
// durable shards) and the retired services. Idempotent.
func (n *ClusterNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	slots := n.slots
	n.slots = make(map[int]*clusterSlot)
	retired := n.retired
	n.retired = nil
	n.mu.Unlock()
	var errs []error
	for _, slot := range slots {
		errs = append(errs, slot.svc.Close())
	}
	for _, svc := range retired {
		errs = append(errs, svc.Close())
	}
	return errors.Join(errs...)
}

// NewClusterServer exposes a ClusterNode over TCP with the standalone
// Server's network layer; the node additionally answers the Manifest op
// and the migration op family.
func NewClusterServer(n *ClusterNode, cfg ServerConfig) (*Server, error) {
	if n == nil {
		return nil, fmt.Errorf("palermo: NewClusterServer requires a node")
	}
	ns, err := netserve.New(n, netserve.Config{
		MaxInFlight:  cfg.MaxInFlight,
		MaxBatch:     cfg.MaxBatch,
		IdleTimeout:  cfg.IdleTimeout,
		WriteTimeout: cfg.WriteTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("palermo: %w", err)
	}
	return &Server{ns: ns}, nil
}

// --- extension ops (manifest + migration) ------------------------------

// ServeExt dispatches the cluster-only wire ops (netserve.ExtStore). The
// payload aliases the connection's frame buffer, so anything retained is
// copied here.
func (n *ClusterNode) ServeExt(op byte, payload []byte) ([]byte, error) {
	switch op {
	case wire.OpManifest:
		n.mu.RLock()
		man := n.man
		n.mu.RUnlock()
		return man.Encode()
	case wire.OpMigrateBegin:
		mb, err := wire.ParseMigrateBeginReq(payload)
		if err != nil {
			return nil, err
		}
		return nil, n.sinkBegin(mb)
	case wire.OpMigrateBlocks:
		s, recs, err := wire.ParseMigrateBlocksReq(payload)
		if err != nil {
			return nil, err
		}
		return nil, n.sinkBlocks(s, recs)
	case wire.OpMigrateMeta:
		s, metaEpoch, total, off, chunk, err := wire.ParseMigrateMetaReq(payload)
		if err != nil {
			return nil, err
		}
		return nil, n.sinkMeta(s, metaEpoch, total, off, chunk)
	case wire.OpMigrateCommit:
		s, newEpoch, err := wire.ParseMigrateCommitReq(payload)
		if err != nil {
			return nil, err
		}
		return nil, n.sinkCommit(s, newEpoch)
	case wire.OpMigrateAbort:
		s, err := wire.ParseMigrateAbortReq(payload)
		if err != nil {
			return nil, err
		}
		return nil, n.sinkAbort(s)
	case wire.OpMigrate:
		s, target, err := wire.ParseMigrateReq(payload)
		if err != nil {
			return nil, err
		}
		return nil, n.Migrate(int(s), target)
	}
	return nil, fmt.Errorf("palermo: unsupported op %d", op)
}

// migrateSink is the inbound staging session: the joining node holds the
// streamed shard entirely in memory until Commit, so a failed migration
// leaves no on-disk trace to clean up.
type migrateSink struct {
	begin     wire.MigrateBegin
	blocks    map[uint64]shard.SealedBlock // last write wins, like replaying the puts
	metaEpoch uint64
	metaTotal uint32
	meta      []byte // staged sequentially; complete when len == metaTotal
}

// sinkBegin opens a staging session after checking the offered shard can
// belong to this node's store: same geometry, same epoch, not already
// owned here. One inbound migration at a time.
func (n *ClusterNode) sinkBegin(mb wire.MigrateBegin) error {
	n.mu.RLock()
	epoch := n.man.Epoch
	_, owned := n.slots[int(mb.Shard)]
	n.mu.RUnlock()
	if int(mb.Shard) >= n.Shards() {
		return fmt.Errorf("palermo: migrate: shard %d outside store's %d shards", mb.Shard, n.Shards())
	}
	if mb.Stride != uint32(n.Shards()) || mb.Blocks != n.Blocks() {
		return fmt.Errorf("palermo: migrate: geometry mismatch (sender %d blocks / %d shards, node %d / %d)",
			mb.Blocks, mb.Stride, n.Blocks(), n.Shards())
	}
	if mb.ShardBlocks != n.router.ShardBlocks(int(mb.Shard)) {
		return fmt.Errorf("palermo: migrate: shard %d capacity mismatch (%d vs %d)", mb.Shard, mb.ShardBlocks, n.router.ShardBlocks(int(mb.Shard)))
	}
	if mb.Epoch != epoch {
		return fmt.Errorf("palermo: migrate: sender at epoch %d, node at %d: refetch placement first", mb.Epoch, epoch)
	}
	if owned {
		return fmt.Errorf("palermo: migrate: node %s already owns shard %d", n.addr, mb.Shard)
	}
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	if n.sink != nil {
		return fmt.Errorf("palermo: migrate: a migration of shard %d is already staging", n.sink.begin.Shard)
	}
	n.sink = &migrateSink{begin: mb, blocks: make(map[uint64]shard.SealedBlock)}
	return nil
}

// sinkFor returns the staging session, which must match the frame's shard.
func (n *ClusterNode) sinkFor(s uint32) (*migrateSink, error) {
	if n.sink == nil || n.sink.begin.Shard != s {
		return nil, fmt.Errorf("palermo: migrate: no staging session for shard %d", s)
	}
	return n.sink, nil
}

// sinkBlocks stages one frame of sealed blocks (snapshot or tail; later
// records for the same local supersede earlier ones, exactly like
// replaying the puts in order).
func (n *ClusterNode) sinkBlocks(s uint32, recs []wire.MigrateBlock) error {
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	sink, err := n.sinkFor(s)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if r.Local >= sink.begin.ShardBlocks {
			return fmt.Errorf("palermo: migrate: block %d outside shard %d capacity %d", r.Local, s, sink.begin.ShardBlocks)
		}
		sink.blocks[r.Local] = shard.SealedBlock{
			Local: r.Local, Epoch: r.Epoch,
			Ct: append([]byte(nil), r.Ct...), // r.Ct aliases the frame buffer
		}
	}
	return nil
}

// sinkMeta stages one chunk of the sealed engine-state blob (sequential:
// each chunk's offset must equal the bytes staged so far).
func (n *ClusterNode) sinkMeta(s uint32, metaEpoch uint64, total, off uint32, chunk []byte) error {
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	sink, err := n.sinkFor(s)
	if err != nil {
		return err
	}
	if sink.meta == nil {
		sink.metaEpoch, sink.metaTotal = metaEpoch, total
		sink.meta = make([]byte, 0, total)
	}
	if metaEpoch != sink.metaEpoch || total != sink.metaTotal {
		return fmt.Errorf("palermo: migrate: meta chunk changed identity mid-stream (epoch %d/%d, total %d/%d)",
			metaEpoch, sink.metaEpoch, total, sink.metaTotal)
	}
	if uint32(len(sink.meta)) != off {
		return fmt.Errorf("palermo: migrate: meta chunk at offset %d, want %d (chunks must be sequential)", off, len(sink.meta))
	}
	sink.meta = append(sink.meta, chunk...)
	return nil
}

// sinkAbort discards the staging session.
func (n *ClusterNode) sinkAbort(s uint32) error {
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	if _, err := n.sinkFor(s); err != nil {
		return err
	}
	n.sink = nil
	return nil
}

// sinkCommit turns the staged session into a live owned shard and flips
// the node's placement to the new epoch: build the shard (wiping any
// stale on-disk state a previous ownership left behind), import the
// sealed blocks, restore the exact engine state, checkpoint, start the
// worker, and only then expose the slot and the new manifest.
func (n *ClusterNode) sinkCommit(s uint32, newEpoch uint64) error {
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	sink, err := n.sinkFor(s)
	if err != nil {
		return err
	}
	// The session is consumed either way: a failed commit needs a fresh
	// Begin, it must not wedge the node's single staging slot.
	n.sink = nil
	if len(sink.meta) == 0 || uint32(len(sink.meta)) != sink.metaTotal {
		return fmt.Errorf("palermo: migrate: commit with %d of %d meta bytes staged", len(sink.meta), sink.metaTotal)
	}
	if newEpoch != sink.begin.Epoch+1 {
		return fmt.Errorf("palermo: migrate: commit epoch %d, want %d", newEpoch, sink.begin.Epoch+1)
	}
	var be backend.Backend
	if n.cfg.Backend != BackendMemory {
		// A previous ownership of this shard (before an earlier migration
		// away) left a subdirectory whose recovered state diverges from
		// the incoming one: wipe it, this import IS the shard's state.
		dir := n.shardDir(int(s))
		if err := os.RemoveAll(dir); err != nil {
			return fmt.Errorf("palermo: migrate: %w", err)
		}
		w, err := n.openShardBackend(dir)
		if err != nil {
			return fmt.Errorf("palermo: migrate: %w", err)
		}
		be = w
	}
	sh, err := shard.New(int(s), n.cfg.Shards, n.router.ShardBlocks(int(s)), n.cfg.Key, shard.DeriveSeed(n.cfg.Seed, int(s)), be)
	if err != nil {
		if be != nil {
			be.Close()
		}
		return fmt.Errorf("palermo: migrate: %w", err)
	}
	fail := func(err error) error {
		sh.Retire() // never farewell-checkpoint a half-imported shard
		sh.Close()
		return fmt.Errorf("palermo: migrate: %w", err)
	}
	blocks := make([]shard.SealedBlock, 0, len(sink.blocks))
	for _, b := range sink.blocks {
		blocks = append(blocks, b)
	}
	if err := sh.ImportBlocks(blocks); err != nil {
		return fail(err)
	}
	if err := sh.RestoreMeta(sink.meta, sink.metaEpoch); err != nil {
		return fail(err)
	}
	// Persist the migrated state as the shard's first durable checkpoint:
	// a crash after commit must recover the imported shard, not the empty
	// creation state.
	if err := sh.ForceCheckpoint(); err != nil {
		return fail(err)
	}
	slot := n.startSlot(sh)
	slot.be = be
	n.mu.Lock()
	if n.man.Epoch != sink.begin.Epoch {
		cur := n.man.Epoch
		n.mu.Unlock()
		// The node's placement moved while the shard streamed: installing
		// would regress the epoch. Discard the import (retired so the
		// teardown never seals into the source's still-live epoch domain).
		sh2 := slot.sh
		slot.svc.Sync(0, func() { sh2.Retire() })
		slot.svc.Close()
		return fmt.Errorf("palermo: migrate: node epoch moved to %d while shard %d staged (began at %d)", cur, s, sink.begin.Epoch)
	}
	n.slots[int(s)] = slot
	n.man = n.man.WithOwner(int(s), n.addr, newEpoch)
	err = n.persistLocked()
	n.mu.Unlock()
	return err
}

// --- outbound migration (source driver) --------------------------------

// migrateDialTimeout bounds the TCP dial to the joining node.
const migrateDialTimeout = 10 * time.Second

// Migrate pushes an owned shard to the node at target and cuts ownership
// over: stream a consistent snapshot while the shard keeps serving, then
// under a brief per-shard barrier send the teed write tail plus the exact
// sealed engine state, commit on the target, and flip this node's
// placement to the bumped epoch. On success the surrendered shard is
// retired (its sealing-epoch domain now belongs to the target) and
// requests for it answer wrong-epoch until clients refetch the manifest.
//
// Failure before the commit frame aborts cleanly: the target discards its
// staging session and this node resumes serving the shard, placement
// unchanged. Failure at or after the commit frame is ambiguous (the
// target may own the shard) and fail-stops the shard here — neither node
// serves it until an operator resolves which side holds it; serving it
// from both, or re-entering its surrendered sealing-epoch domain, would
// be worse than unavailability.
func (n *ClusterNode) Migrate(shardIdx int, target string) error {
	n.migMu.Lock()
	defer n.migMu.Unlock()
	if target == n.addr {
		return fmt.Errorf("palermo: migrate: target %s is this node", target)
	}
	n.mu.RLock()
	slot, owned := n.slots[shardIdx]
	epoch := n.man.Epoch
	n.mu.RUnlock()
	if !owned {
		return fmt.Errorf("palermo: migrate: node %s does not own shard %d", n.addr, shardIdx)
	}
	nc, err := net.DialTimeout("tcp", target, migrateDialTimeout)
	if err != nil {
		return fmt.Errorf("palermo: migrate: dial %s: %w", target, err)
	}
	defer nc.Close()
	mc := &migrateConn{nc: nc}
	if err := mc.roundTrip(wire.OpMigrateBegin, wire.AppendMigrateBeginReq(nil, wire.MigrateBegin{
		Shard:       uint32(shardIdx),
		Stride:      uint32(n.Shards()),
		Blocks:      n.Blocks(),
		ShardBlocks: n.router.ShardBlocks(shardIdx),
		Epoch:       epoch,
	})); err != nil {
		return fmt.Errorf("palermo: migrate begin: %w", err)
	}

	// Phase 1: snapshot + arm the tee in one barrier (their union covers
	// the write stream exactly once), then stream the snapshot while the
	// shard keeps serving.
	var snap []shard.SealedBlock
	var expErr error
	sh := slot.sh
	if err := slot.svc.Sync(0, func() {
		snap, expErr = sh.ExportBlocks()
		if expErr == nil {
			sh.StartTee()
		}
	}); err != nil {
		return fmt.Errorf("palermo: migrate: %w", err)
	}
	if expErr != nil {
		return fmt.Errorf("palermo: migrate: %w", expErr)
	}
	if err := mc.sendBlocks(uint32(shardIdx), snap); err != nil {
		n.abortMigration(mc, slot, shardIdx, false)
		return fmt.Errorf("palermo: migrate snapshot: %w", err)
	}

	// Cutover barrier: stop admitting requests for this shard, drain what
	// is queued, and capture the tail + exact engine state.
	n.mu.Lock()
	n.migrating[shardIdx] = true
	n.mu.Unlock()
	var tail []shard.SealedBlock
	var meta []byte
	var metaEpoch uint64
	if err := slot.svc.Sync(0, func() {
		tail = sh.StopTee()
		meta, metaEpoch, expErr = sh.ExportMeta()
	}); err != nil {
		n.abortMigration(mc, slot, shardIdx, true)
		return fmt.Errorf("palermo: migrate: %w", err)
	}
	if expErr != nil {
		n.abortMigration(mc, slot, shardIdx, true)
		return fmt.Errorf("palermo: migrate: %w", expErr)
	}
	if err := mc.sendBlocks(uint32(shardIdx), tail); err != nil {
		n.abortMigration(mc, slot, shardIdx, true)
		return fmt.Errorf("palermo: migrate tail: %w", err)
	}
	if err := mc.sendMeta(uint32(shardIdx), metaEpoch, meta); err != nil {
		n.abortMigration(mc, slot, shardIdx, true)
		return fmt.Errorf("palermo: migrate meta: %w", err)
	}

	// Commit. From the moment the frame is on the wire, failure no longer
	// means "the target doesn't have the shard" — fail-stop, don't abort.
	if err := mc.roundTrip(wire.OpMigrateCommit, wire.AppendMigrateCommitReq(nil, uint32(shardIdx), epoch+1)); err != nil {
		n.failStop(slot, shardIdx)
		return fmt.Errorf("palermo: migrate commit failed after the commit frame was sent; shard %d fail-stopped on this node (the target may own it — resolve placement manually): %w", shardIdx, err)
	}

	// Committed: flip placement, then retire the surrendered shard. Its
	// sealing-epoch domain now continues on the target, so this side must
	// never seal again (Retire suppresses the farewell checkpoint).
	n.mu.Lock()
	delete(n.slots, shardIdx)
	delete(n.migrating, shardIdx)
	n.man = n.man.WithOwner(shardIdx, target, epoch+1)
	perr := n.persistLocked()
	n.mu.Unlock()
	n.retireSlot(slot, shardIdx)
	if perr != nil {
		return perr
	}
	return nil
}

// retireSlot captures a surrendered shard's final trace, retires it, and
// parks its drained service for merged stats.
func (n *ClusterNode) retireSlot(slot *clusterSlot, shardIdx int) {
	var lt LeafTrace
	sh := slot.sh
	capture := func() {
		lt.Shard = shardIdx
		lt.NumLeaves = sh.DataLeaves()
		if tr := sh.Trace(); tr != nil {
			lt.Leaves = append([]uint64(nil), tr.Leaves...)
		}
		sh.Retire()
	}
	if err := slot.svc.Sync(0, capture); err != nil {
		slot.svc.WaitClosed()
		capture()
	}
	slot.svc.Close()
	n.mu.Lock()
	n.retired = append(n.retired, slot.svc)
	if n.traceOn {
		n.retiredTraces = append(n.retiredTraces, lt)
	}
	n.mu.Unlock()
}

// failStop removes a shard whose migration commit outcome is unknown:
// neither serve it (the target may own it) nor checkpoint it (the target
// may continue its sealing-epoch domain).
func (n *ClusterNode) failStop(slot *clusterSlot, shardIdx int) {
	n.mu.Lock()
	delete(n.slots, shardIdx)
	delete(n.migrating, shardIdx)
	n.mu.Unlock()
	n.retireSlot(slot, shardIdx)
}

// abortMigration unwinds a pre-commit failure: best-effort Abort to the
// target, discard the tee, and (if the cutover barrier was up) resume
// serving the shard.
func (n *ClusterNode) abortMigration(mc *migrateConn, slot *clusterSlot, shardIdx int, barrier bool) {
	mc.roundTrip(wire.OpMigrateAbort, wire.AppendMigrateAbortReq(nil, uint32(shardIdx))) // best-effort
	sh := slot.sh
	if err := slot.svc.Sync(0, func() { sh.StopTee() }); err != nil {
		slot.svc.WaitClosed()
		sh.StopTee()
	}
	if barrier {
		n.mu.Lock()
		delete(n.migrating, shardIdx)
		n.mu.Unlock()
	}
}

// migrateConn is the source's raw, strictly sequential migration stream:
// one request frame on the wire at a time, each answered before the next
// (ordering is the correctness anchor for snapshot-then-tail).
type migrateConn struct {
	nc    net.Conn
	reqID uint64
}

func (mc *migrateConn) roundTrip(op byte, payload []byte) error {
	mc.reqID++
	if err := wire.WriteFrame(mc.nc, op, mc.reqID, payload); err != nil {
		return err
	}
	f, err := wire.ReadFrame(mc.nc)
	if err != nil {
		return err
	}
	if f.Op != wire.Resp(op) || f.ReqID != mc.reqID {
		return fmt.Errorf("out-of-order migration response (op %d, id %d)", f.Op, f.ReqID)
	}
	st, _, msg, err := wire.ParseResp(f.Payload)
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return remoteErr(st, msg)
	}
	return nil
}

// sendBlocks streams sealed blocks in MaxMigrateBlocks-sized frames (an
// empty set sends nothing).
func (mc *migrateConn) sendBlocks(s uint32, blocks []shard.SealedBlock) error {
	for off := 0; off < len(blocks); off += wire.MaxMigrateBlocks {
		end := off + wire.MaxMigrateBlocks
		if end > len(blocks) {
			end = len(blocks)
		}
		recs := make([]wire.MigrateBlock, 0, end-off)
		for _, b := range blocks[off:end] {
			recs = append(recs, wire.MigrateBlock{Local: b.Local, Epoch: b.Epoch, Ct: b.Ct})
		}
		payload, err := wire.AppendMigrateBlocksReq(nil, s, recs)
		if err != nil {
			return err
		}
		if err := mc.roundTrip(wire.OpMigrateBlocks, payload); err != nil {
			return err
		}
	}
	return nil
}

// sendMeta streams the sealed engine-state blob in MaxMetaChunk-sized
// frames.
func (mc *migrateConn) sendMeta(s uint32, metaEpoch uint64, meta []byte) error {
	total := uint32(len(meta))
	for off := uint32(0); off < total; {
		end := off + wire.MaxMetaChunk
		if end > total {
			end = total
		}
		payload, err := wire.AppendMigrateMetaReq(nil, s, metaEpoch, total, off, meta[off:end])
		if err != nil {
			return err
		}
		if err := mc.roundTrip(wire.OpMigrateMeta, payload); err != nil {
			return err
		}
		off = end
	}
	return nil
}
