package palermo

// Store is the adoption-facing API: an oblivious block store that a
// downstream user can call like a small key-value device. Reads and writes
// of 64-byte blocks execute the full Palermo ORAM protocol over the
// functional engine — real tree, stash, recursive position maps, AES-CTR
// sealing — so the sequence of tree paths a storage backend would observe
// is computationally independent of the keys accessed.
//
//	st, _ := palermo.NewStore(palermo.StoreConfig{Blocks: 1 << 20})
//	st.Write(42, payload)       // payload: 64 bytes
//	data, _ := st.Read(42)
//
// The Store tracks the traffic each operation would cost on the modeled
// hardware (TrafficReport), but does not run the timing simulation; use
// Run/the experiment harness for performance studies. For concurrent
// callers and capacity scaling, see ShardedStore.

import (
	"fmt"

	"palermo/internal/shard"
)

// BlockSize is the store's block granularity.
const BlockSize = shard.BlockBytes

// MaxBlocks is the largest capacity NewStore/NewShardedStore accept
// (2^40 blocks = 64 TB). Beyond it, tree-depth arithmetic in the engine
// layer would overflow; the constructors reject it eagerly instead.
const MaxBlocks = 1 << 40

// validateStoreParams rejects configurations that would otherwise fail
// deep inside oram.NewRing (or not fail at all and overflow), with a
// clear palermo:-prefixed error. Called after defaults are applied.
func validateStoreParams(blocks uint64, key []byte) error {
	if blocks == 0 {
		return fmt.Errorf("palermo: Blocks must be > 0")
	}
	if blocks > MaxBlocks {
		return fmt.Errorf("palermo: Blocks %d exceeds the maximum capacity of %d blocks", blocks, uint64(MaxBlocks))
	}
	switch len(key) {
	case 16, 24, 32:
		return nil
	default:
		return fmt.Errorf("palermo: Key must be 16, 24, or 32 bytes (AES-128/192/256), got %d", len(key))
	}
}

// StoreConfig configures an oblivious store.
type StoreConfig struct {
	Blocks uint64 // capacity in 64-byte blocks (default 2^20 = 64 MB)
	Key    []byte // AES key, 16/24/32 bytes (default: a fixed demo key)
	Seed   uint64 // leaf-selection seed (default 1)
}

func (c *StoreConfig) defaults() {
	if c.Blocks == 0 {
		c.Blocks = 1 << 20
	}
	if c.Key == nil {
		c.Key = []byte("palermo-demo-key")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Store is an oblivious 64-byte-block store: the 1-shard special case of
// the service layer's partition (the shard seals under global ids, which
// coincide with block ids at stride 1, and uses Seed unchanged).
type Store struct {
	sh     *shard.Shard
	blocks uint64
}

// NewStore builds a store. Invalid configurations (zero or overflowing
// capacity after defaulting, bad key lengths) are rejected here rather
// than surfacing as a deep engine failure.
func NewStore(cfg StoreConfig) (*Store, error) {
	cfg.defaults()
	if err := validateStoreParams(cfg.Blocks, cfg.Key); err != nil {
		return nil, err
	}
	sh, err := shard.New(0, 1, cfg.Blocks, cfg.Key, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Store{sh: sh, blocks: cfg.Blocks}, nil
}

// Blocks returns the capacity in blocks.
func (s *Store) Blocks() uint64 { return s.blocks }

// Write stores a 64-byte block obliviously under the given block id.
func (s *Store) Write(id uint64, data []byte) error {
	if id >= s.blocks {
		return fmt.Errorf("palermo: block %d outside capacity %d", id, s.blocks)
	}
	if len(data) != BlockSize {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(data))
	}
	return s.sh.Write(id, data)
}

// Read fetches a block obliviously. Reading a never-written block returns
// a zero block (the protocol performs the same path access either way, so
// existence is not observable).
func (s *Store) Read(id uint64) ([]byte, error) {
	if id >= s.blocks {
		return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, s.blocks)
	}
	return s.sh.Read(id)
}

// TrafficReport summarizes the DRAM cost the operations so far would incur.
type TrafficReport struct {
	Reads, Writes       uint64 // store operations
	DRAMReads           uint64 // 64-byte line reads the protocol generated
	DRAMWrites          uint64
	AmplificationFactor float64 // DRAM lines moved per operation
	StashPeak           int
}

// Traffic returns the accumulated report.
func (s *Store) Traffic() TrafficReport {
	c := s.sh.Snapshot()
	rep := TrafficReport{
		Reads: c.Reads, Writes: c.Writes,
		DRAMReads: c.DRAMReads, DRAMWrites: c.DRAMWrites,
		StashPeak: c.StashPeak,
	}
	if ops := c.Reads + c.Writes; ops > 0 {
		rep.AmplificationFactor = float64(c.DRAMReads+c.DRAMWrites) / float64(ops)
	}
	return rep
}
