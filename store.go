package palermo

// Store is the adoption-facing API: an oblivious block store that a
// downstream user can call like a small key-value device. Reads and writes
// of 64-byte blocks execute the full Palermo ORAM protocol over the
// functional engine — real tree, stash, recursive position maps, AES-CTR
// sealing — so the sequence of tree paths a storage backend would observe
// is computationally independent of the keys accessed.
//
//	st, _ := palermo.NewStore(palermo.StoreConfig{Blocks: 1 << 20})
//	st.Write(42, payload)       // payload: 64 bytes
//	data, _ := st.Read(42)
//
// The Store tracks the traffic each operation would cost on the modeled
// hardware (TrafficReport), but does not run the timing simulation; use
// Run/the experiment harness for performance studies. For concurrent
// callers and capacity scaling, see ShardedStore.

import (
	"fmt"
	"path/filepath"

	"palermo/internal/backend"
	"palermo/internal/backend/blockfile"
	"palermo/internal/backend/wal"
	"palermo/internal/shard"
)

// BlockSize is the store's block granularity.
const BlockSize = shard.BlockBytes

// MaxBlocks is the largest capacity NewStore/NewShardedStore accept
// (2^40 blocks = 64 TB). Beyond it, tree-depth arithmetic in the engine
// layer would overflow; the constructors reject it eagerly instead.
const MaxBlocks = 1 << 40

// validateStoreParams rejects configurations that would otherwise fail
// deep inside oram.NewRing (or not fail at all and overflow), with a
// clear palermo:-prefixed error. Called after defaults are applied.
func validateStoreParams(blocks uint64, key []byte) error {
	if blocks == 0 {
		return fmt.Errorf("palermo: Blocks must be > 0")
	}
	if blocks > MaxBlocks {
		return fmt.Errorf("palermo: Blocks %d exceeds the maximum capacity of %d blocks", blocks, uint64(MaxBlocks))
	}
	switch len(key) {
	case 16, 24, 32:
		return nil
	default:
		return fmt.Errorf("palermo: Key must be 16, 24, or 32 bytes (AES-128/192/256), got %d", len(key))
	}
}

// Block-state backend selectors for StoreConfig/ShardedStoreConfig.
const (
	// BackendMemory keeps sealed blocks in process-private maps — the
	// default, byte-identical to the store's historical behavior. State
	// evaporates on process exit.
	BackendMemory = "memory"
	// BackendWAL persists sealed blocks to Dir through a CRC-framed
	// append-only log with group-committed fsync plus compacted metadata
	// snapshots. A store reopened from the same Dir (and Key) resumes
	// exactly where Close left it; a crash loses at most the un-fsynced
	// group-commit tail. DESIGN.md §7 describes the format and why the
	// persisted view leaks nothing beyond what §VI's untrusted storage
	// already observes.
	BackendWAL = "wal"
	// BackendBlockfile persists sealed blocks to Dir as fixed 512-byte
	// slots in a paged block file (direct I/O where available), with an
	// append-only log carrying only tiny metadata records. Same §7
	// crash-recovery discipline as BackendWAL — torn slots are discarded
	// whole under covering epoch reservations, wrong-key reopens are
	// rejected — but checkpoint compaction is O(metadata) instead of
	// O(stored blocks) and block state lives on disk, not in a map.
	// DESIGN.md §12.
	BackendBlockfile = "blockfile"
)

// StoreConfig configures an oblivious store.
type StoreConfig struct {
	Blocks uint64 // capacity in 64-byte blocks (default 2^20 = 64 MB)
	Key    []byte // AES key, 16/24/32 bytes (default: a fixed demo key)
	Seed   uint64 // leaf-selection seed (default 1)

	// Engine selects the storage engine: BackendMemory (default),
	// BackendWAL, or BackendBlockfile. The durable engines require Dir.
	Engine string
	// Backend is the original name of the Engine knob, kept as an alias
	// so existing callers and configs keep working. Setting both to
	// different values is an error.
	Backend string
	// Dir is the durable store directory (BackendWAL only). Reopening a
	// populated Dir recovers the persisted state; the directory's manifest
	// pins Blocks (and shard count) so a mismatched reopen fails loudly.
	Dir string
	// CheckpointEvery is the minimum writes between automatic
	// WAL-compaction checkpoints (default 4096; <0 disables periodic
	// checkpoints — Close still writes one). On populated stores
	// compaction is additionally deferred until the log tail reaches a
	// quarter of the stored blocks, keeping snapshot I/O amortized O(1)
	// per write.
	CheckpointEvery int
	// GroupCommit is how many WAL appends share one fsync (default 32;
	// 1 = synchronous durability per write).
	GroupCommit int
	// PipelineDepth is how many accesses the store's executor keeps in
	// flight: an access's backend block vector (and, with BackendWAL, its
	// group commit's fsync) is in flight while the next access's engine
	// transition runs. Depth 1 executes strictly serially — bit-identical
	// to the pre-pipeline store; the determinism contract (leaf traces,
	// counters, recovered state) is identical at every depth. Default 2.
	// With GroupCommit 1, fsyncs stay synchronous regardless (the
	// per-write durability promise). Max MaxPipelineDepth.
	PipelineDepth int
	// TreeTopLevels pins the engine's per-space tree-top cache to exactly
	// this many resident levels (0 keeps the hardware byte-budget default,
	// ~6 levels; max MaxTreeTopLevels). Every path access touches the top
	// levels regardless of the key, so residency is access-pattern-neutral:
	// leaf traces, payloads, and checkpoints are bit-identical at any
	// setting (DESIGN.md §10) — only the DRAM traffic report shrinks
	// (TrafficReport.TreeTopHits counts the absorbed lines).
	TreeTopLevels int
	// CryptoWorkers offloads seal/unseal AES transforms to a bounded
	// worker pool hung off the pipelined executor (capped at GOMAXPROCS;
	// 0 keeps crypto inline on the shard's owner goroutine; requires
	// PipelineDepth > 1, otherwise it is ignored). Workers run only the
	// pure ciphertext↔plaintext transforms with owner-assigned epochs —
	// every engine transition, RNG draw, and counter stays on the owner —
	// so leaf traces, counters, and checkpoint bytes are bit-identical at
	// every worker count (DESIGN.md §12).
	CryptoWorkers int
	// SlotCacheBytes budgets the blockfile engine's slot-level read cache:
	// recently read 512-byte sealed slots stay resident (CLOCK eviction)
	// so repeated tree-top and posmap-group reads skip the pread. Gets are
	// served from the cache only when the whole vectored run is resident;
	// writes invalidate their slots and checkpoints clear the cache, so
	// served bytes are identical at every budget (DESIGN.md §14). 0 (the
	// default) disables the cache. Requires Engine BackendBlockfile.
	SlotCacheBytes int
}

// MaxPipelineDepth caps PipelineDepth for both store flavors: beyond a
// few dozen in-flight accesses the overlap is saturated and only the
// crash-loss window of a durable backend keeps growing.
const MaxPipelineDepth = 64

// MaxTreeTopLevels caps TreeTopLevels for both store flavors: 2^24 resident
// buckets is already far past any engine geometry's depth (the engine
// clamps to its actual depth), so larger values are configuration typos.
const MaxTreeTopLevels = 24

// validatePipelineDepth rejects nonsensical depths; 0 means default.
func validatePipelineDepth(d int) error {
	if d < 0 || d > MaxPipelineDepth {
		return fmt.Errorf("palermo: PipelineDepth must be in [0, %d], got %d", MaxPipelineDepth, d)
	}
	return nil
}

// validateTreeTopLevels rejects nonsensical cache pins; 0 means default.
func validateTreeTopLevels(k int) error {
	if k < 0 || k > MaxTreeTopLevels {
		return fmt.Errorf("palermo: TreeTopLevels must be in [0, %d], got %d", MaxTreeTopLevels, k)
	}
	return nil
}

// validateCryptoWorkers rejects negative pool sizes; 0 means inline.
// (The pool itself caps the count at GOMAXPROCS.)
func validateCryptoWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("palermo: CryptoWorkers must be >= 0, got %d", n)
	}
	return nil
}

// MaxPrefetchDepth caps the deep planner's look-ahead for both sharded
// flavors: beyond a few dozen predicted batches the announce window — not
// the horizon — is the binding resource, so larger values are typos.
const MaxPrefetchDepth = 64

// validatePrefetchDepth rejects nonsensical look-aheads; 0 means default.
func validatePrefetchDepth(d int) error {
	if d < 0 || d > MaxPrefetchDepth {
		return fmt.Errorf("palermo: PrefetchDepth must be in [0, %d], got %d", MaxPrefetchDepth, d)
	}
	return nil
}

// validateSlotCacheBytes rejects negative budgets and budgets on engines
// without a slot cache; 0 means off.
func validateSlotCacheBytes(n int, engine string) error {
	if n < 0 {
		return fmt.Errorf("palermo: SlotCacheBytes must be >= 0, got %d", n)
	}
	if n > 0 && engine != BackendBlockfile {
		return fmt.Errorf("palermo: SlotCacheBytes requires Engine %q, got %q", BackendBlockfile, engine)
	}
	return nil
}

// resolveEngine folds the Engine/Backend alias pair into one selector:
// Engine wins when only it is set, Backend keeps old callers working,
// and a contradictory pair is refused rather than silently picking one.
func resolveEngine(engine, backendAlias string) (string, error) {
	switch {
	case engine == "":
		return backendAlias, nil
	case backendAlias == "" || backendAlias == engine:
		return engine, nil
	default:
		return "", fmt.Errorf("palermo: Engine %q and Backend %q disagree (they are aliases; set one)", engine, backendAlias)
	}
}

func (c *StoreConfig) defaults() {
	if c.Blocks == 0 {
		c.Blocks = 1 << 20
	}
	if c.Key == nil {
		c.Key = []byte("palermo-demo-key")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Backend == "" {
		c.Backend = BackendMemory
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = 2
	}
}

// openBackends validates the engine selection and opens one backend per
// shard (nil entries select the in-memory default). For the durable
// engines the directory gains a manifest pinning (blocks, shards,
// engine) and one sub-directory per shard, so a Store and a 1-shard
// ShardedStore are interchangeable over the same Dir.
func openBackends(kind, dir string, blocks uint64, shards, groupCommit, pipelineDepth, slotCacheBytes int) ([]backend.Backend, error) {
	switch kind {
	case BackendMemory:
		if dir != "" {
			return nil, fmt.Errorf("palermo: Dir is set but Engine is %q (did you mean Engine: palermo.BackendWAL or palermo.BackendBlockfile?)", kind)
		}
		return make([]backend.Backend, shards), nil
	case BackendWAL, BackendBlockfile:
		if dir == "" {
			return nil, fmt.Errorf("palermo: Engine %q requires Dir", kind)
		}
		if err := wal.EnsureManifest(dir, wal.Manifest{Version: wal.ManifestVersion, Blocks: blocks, Shards: shards, Engine: kind}); err != nil {
			return nil, fmt.Errorf("palermo: %w", err)
		}
		bes := make([]backend.Backend, shards)
		for i := range bes {
			var be backend.Backend
			var err error
			sdir := filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
			if kind == BackendBlockfile {
				be, err = blockfile.Open(sdir, blockfile.Options{GroupCommit: groupCommit, CacheBytes: slotCacheBytes})
			} else {
				be, err = wal.Open(sdir, wal.Options{GroupCommit: groupCommit, CommitDepth: pipelineDepth})
			}
			if err != nil {
				for _, open := range bes[:i] {
					open.Close()
				}
				return nil, fmt.Errorf("palermo: %w", err)
			}
			bes[i] = be
		}
		return bes, nil
	default:
		return nil, fmt.Errorf("palermo: unknown Engine %q (want %q, %q, or %q)", kind, BackendMemory, BackendWAL, BackendBlockfile)
	}
}

// DetectEngine reports the storage engine recorded in dir's manifest,
// defaulting to BackendWAL when the directory has no readable manifest
// yet (matching the historical meaning of "a durable directory"). Tools
// reopening an existing store use it so the operator never has to
// restate the engine the directory was created with.
func DetectEngine(dir string) string {
	if m, err := wal.ReadManifest(dir); err == nil {
		return m.Engine
	}
	return BackendWAL
}

// applyCheckpointEvery maps the config knob onto the shard: 0 keeps the
// shard default, negative disables periodic checkpoints.
func applyCheckpointEvery(sh *shard.Shard, every int) {
	switch {
	case every < 0:
		sh.SetCheckpointEvery(0)
	case every > 0:
		sh.SetCheckpointEvery(uint64(every))
	}
}

// Store is an oblivious 64-byte-block store: the 1-shard special case of
// the service layer's partition (the shard seals under global ids, which
// coincide with block ids at stride 1, and uses Seed unchanged).
type Store struct {
	sh       *shard.Shard
	be       backend.Backend // storage backend, kept for cache telemetry (nil = memory)
	blocks   uint64
	closed   bool
	closeErr error // first Close outcome, re-returned on later calls
}

// NewStore builds a store. Invalid configurations (zero or overflowing
// capacity after defaulting, bad key lengths, backend/Dir mismatches) are
// rejected here rather than surfacing as a deep engine failure. With
// Backend: BackendWAL, a populated Dir is recovered: checkpointed state
// restores exactly and any post-checkpoint log tail is replayed.
func NewStore(cfg StoreConfig) (*Store, error) {
	if err := validatePipelineDepth(cfg.PipelineDepth); err != nil {
		return nil, err
	}
	if err := validateTreeTopLevels(cfg.TreeTopLevels); err != nil {
		return nil, err
	}
	if err := validateCryptoWorkers(cfg.CryptoWorkers); err != nil {
		return nil, err
	}
	engine, err := resolveEngine(cfg.Engine, cfg.Backend)
	if err != nil {
		return nil, err
	}
	cfg.Backend = engine
	cfg.Engine = ""
	cfg.defaults()
	if err := validateStoreParams(cfg.Blocks, cfg.Key); err != nil {
		return nil, err
	}
	if err := validateSlotCacheBytes(cfg.SlotCacheBytes, cfg.Backend); err != nil {
		return nil, err
	}
	bes, err := openBackends(cfg.Backend, cfg.Dir, cfg.Blocks, 1, cfg.GroupCommit, cfg.PipelineDepth, cfg.SlotCacheBytes)
	if err != nil {
		return nil, err
	}
	sh, err := shard.New(0, 1, cfg.Blocks, cfg.Key, cfg.Seed, bes[0])
	if err != nil {
		if bes[0] != nil {
			bes[0].Close()
		}
		return nil, fmt.Errorf("palermo: %w", err)
	}
	applyCheckpointEvery(sh, cfg.CheckpointEvery)
	sh.SetTreeTopLevels(cfg.TreeTopLevels)
	sh.EnablePipeline(cfg.PipelineDepth)
	sh.EnableCryptoPool(cfg.CryptoWorkers)
	return &Store{sh: sh, be: bes[0], blocks: cfg.Blocks}, nil
}

// Blocks returns the capacity in blocks.
func (s *Store) Blocks() uint64 { return s.blocks }

// Write stores a 64-byte block obliviously under the given block id.
func (s *Store) Write(id uint64, data []byte) error {
	if s.closed {
		return ErrClosed
	}
	if id >= s.blocks {
		return fmt.Errorf("palermo: block %d outside capacity %d", id, s.blocks)
	}
	if len(data) != BlockSize {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(data))
	}
	return s.sh.Write(id, data)
}

// Read fetches a block obliviously. Reading a never-written block returns
// a zero block (the protocol performs the same path access either way, so
// existence is not observable).
func (s *Store) Read(id uint64) ([]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if id >= s.blocks {
		return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, s.blocks)
	}
	return s.sh.Read(id)
}

// Close flushes and checkpoints a durable backend and releases it; a
// memory-backed store just marks itself closed. Operations after Close
// return ErrClosed. Idempotent: every call reports the first Close's
// outcome, so a failed checkpoint is never silently swallowed by a retry.
func (s *Store) Close() error {
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	s.closeErr = s.sh.Close()
	return s.closeErr
}

// TrafficReport summarizes the DRAM cost the operations so far would incur.
type TrafficReport struct {
	Reads, Writes       uint64 // store operations
	DRAMReads           uint64 // 64-byte line reads the protocol generated
	DRAMWrites          uint64
	AmplificationFactor float64 // DRAM lines moved per operation
	StashPeak           int

	// TreeTopHits counts protocol line movements the resident tree-top
	// cache absorbed — traffic that never reached DRAM/the backend. The
	// protocol's total line cost is DRAMReads + DRAMWrites + TreeTopHits
	// (bytes saved = 64 * TreeTopHits); AmplificationFactor counts only
	// the lines actually moved.
	TreeTopHits uint64

	// Prefetch planner accounting (ShardedStoreConfig.Prefetch): payload
	// fetches issued at batch admission, how many a read consumed, and how
	// many a superseding write invalidated before use.
	PrefetchIssued, PrefetchUsed, PrefetchStale uint64

	// Blockfile slot-cache accounting (SlotCacheBytes > 0): slots a
	// vectored Get served from the resident cache versus slots that paid a
	// pread. Always zero with the cache off or a non-blockfile engine.
	SlotCacheHits, SlotCacheMisses uint64
}

// Traffic returns the accumulated report.
func (s *Store) Traffic() TrafficReport {
	c := s.sh.Snapshot()
	rep := TrafficReport{
		Reads: c.Reads, Writes: c.Writes,
		DRAMReads: c.DRAMReads, DRAMWrites: c.DRAMWrites,
		StashPeak:      c.StashPeak,
		TreeTopHits:    c.TreeTopHits,
		PrefetchIssued: c.PrefetchIssued, PrefetchUsed: c.PrefetchUsed, PrefetchStale: c.PrefetchStale,
	}
	if ops := c.Reads + c.Writes; ops > 0 {
		rep.AmplificationFactor = float64(c.DRAMReads+c.DRAMWrites) / float64(ops)
	}
	rep.SlotCacheHits, rep.SlotCacheMisses = slotCacheStats(s.be)
	return rep
}

// slotCacheStats duck-types a backend's slot-cache telemetry (the
// blockfile engine with SlotCacheBytes > 0); every other backend reports
// (0, 0).
func slotCacheStats(be backend.Backend) (hits, misses uint64) {
	if sc, ok := be.(interface{ SlotCacheStats() (uint64, uint64) }); ok {
		return sc.SlotCacheStats()
	}
	return 0, 0
}
