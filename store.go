package palermo

// Store is the adoption-facing API: an oblivious block store that a
// downstream user can call like a small key-value device. Reads and writes
// of 64-byte blocks execute the full Palermo ORAM protocol over the
// functional engine — real tree, stash, recursive position maps, AES-CTR
// sealing — so the sequence of tree paths a storage backend would observe
// is computationally independent of the keys accessed.
//
//	st, _ := palermo.NewStore(palermo.StoreConfig{Blocks: 1 << 20})
//	st.Write(42, payload)       // payload: 64 bytes
//	data, _ := st.Read(42)
//
// The Store tracks the traffic each operation would cost on the modeled
// hardware (TrafficReport), but does not run the timing simulation; use
// Run/the experiment harness for performance studies.

import (
	"fmt"

	"palermo/internal/crypt"
	"palermo/internal/oram"
)

// BlockSize is the store's block granularity.
const BlockSize = crypt.BlockBytes

// StoreConfig configures an oblivious store.
type StoreConfig struct {
	Blocks uint64 // capacity in 64-byte blocks (default 2^20 = 64 MB)
	Key    []byte // AES key, 16/24/32 bytes (default: a fixed demo key)
	Seed   uint64 // leaf-selection seed (default 1)
}

func (c *StoreConfig) defaults() {
	if c.Blocks == 0 {
		c.Blocks = 1 << 20
	}
	if c.Key == nil {
		c.Key = []byte("palermo-demo-key")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Store is an oblivious 64-byte-block store.
type Store struct {
	engine *oram.Ring
	sealer *crypt.Sealer
	// sealed holds ciphertexts by block id; the ORAM engine moves opaque
	// references (the paper's simulator does the same — payload movement
	// is position-independent once the protocol decides the addresses).
	sealed map[uint64]sealedBlock
	blocks uint64

	reads, writes      uint64
	trafficR, trafficW uint64
}

type sealedBlock struct {
	ct    []byte
	epoch uint64
}

// NewStore builds a store.
func NewStore(cfg StoreConfig) (*Store, error) {
	cfg.defaults()
	sealer, err := crypt.NewSealer(cfg.Key)
	if err != nil {
		return nil, err
	}
	ocfg := oram.PalermoRingConfig()
	ocfg.NLines = cfg.Blocks
	ocfg.Seed = cfg.Seed
	engine, err := oram.NewRing(ocfg)
	if err != nil {
		return nil, err
	}
	return &Store{
		engine: engine,
		sealer: sealer,
		sealed: make(map[uint64]sealedBlock),
		blocks: cfg.Blocks,
	}, nil
}

// Blocks returns the capacity in blocks.
func (s *Store) Blocks() uint64 { return s.blocks }

// Write stores a 64-byte block obliviously under the given block id.
func (s *Store) Write(id uint64, data []byte) error {
	if id >= s.blocks {
		return fmt.Errorf("palermo: block %d outside capacity %d", id, s.blocks)
	}
	if len(data) != BlockSize {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(data))
	}
	ct, epoch, err := s.sealer.Seal(id, data)
	if err != nil {
		return err
	}
	plan := s.engine.Access(id, true, epoch)
	s.sealed[id] = sealedBlock{ct: ct, epoch: epoch}
	s.writes++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	return nil
}

// Read fetches a block obliviously. Reading a never-written block returns
// a zero block (the protocol performs the same path access either way, so
// existence is not observable).
func (s *Store) Read(id uint64) ([]byte, error) {
	if id >= s.blocks {
		return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, s.blocks)
	}
	plan := s.engine.Access(id, false, 0)
	s.reads++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	sb, ok := s.sealed[id]
	if !ok {
		return make([]byte, BlockSize), nil
	}
	if plan.Val != sb.epoch {
		return nil, fmt.Errorf("palermo: protocol state diverged for block %d (epoch %d != %d)",
			id, plan.Val, sb.epoch)
	}
	return s.sealer.Open(id, sb.epoch, sb.ct)
}

// TrafficReport summarizes the DRAM cost the operations so far would incur.
type TrafficReport struct {
	Reads, Writes       uint64 // store operations
	DRAMReads           uint64 // 64-byte line reads the protocol generated
	DRAMWrites          uint64
	AmplificationFactor float64 // DRAM lines moved per operation
	StashPeak           int
}

// Traffic returns the accumulated report.
func (s *Store) Traffic() TrafficReport {
	ops := s.reads + s.writes
	rep := TrafficReport{
		Reads: s.reads, Writes: s.writes,
		DRAMReads: s.trafficR, DRAMWrites: s.trafficW,
		StashPeak: s.engine.StashMax(0),
	}
	if ops > 0 {
		rep.AmplificationFactor = float64(s.trafficR+s.trafficW) / float64(ops)
	}
	return rep
}
