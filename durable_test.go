package palermo

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"testing"

	"palermo/internal/rng"
)

func fillBlock(v uint64) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = byte(v + uint64(i)*3)
	}
	return b
}

// TestStoreWALCloseReopen: a clean Close checkpoints everything, and a
// reopen restores the store bit-exactly — payloads and traffic counters.
func TestStoreWALCloseReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir, Seed: 7}

	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64][]byte)
	r := rng.New(42)
	for i := 0; i < 300; i++ {
		id := r.Uint64n(1 << 10)
		if i%3 == 0 {
			if _, err := st.Read(id); err != nil {
				t.Fatal(err)
			}
			continue
		}
		data := fillBlock(uint64(i))
		if err := st.Write(id, data); err != nil {
			t.Fatal(err)
		}
		want[id] = data
	}
	before := st.Traffic()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after Close = %v, want ErrClosed", err)
	}

	re, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if after := re.Traffic(); after != before {
		t.Fatalf("traffic counters not restored:\n before %+v\n after  %+v", before, after)
	}
	for id, data := range want {
		got, err := re.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("block %d diverged after reopen", id)
		}
	}
}

// TestShardedStoreWALRecovery is the acceptance scenario: a mixed
// workload through a WAL-backed ShardedStore, Close, reopen from the same
// dir — every written block reads back byte-identical with traffic
// counters restored.
func TestShardedStoreWALRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := ShardedStoreConfig{
		Blocks: 1 << 11, Shards: 4, Seed: 3,
		Backend: BackendWAL, Dir: dir,
		CheckpointEvery: 64, // force periodic compactions mid-workload too
	}
	st, err := NewShardedStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64][]byte)
	r := rng.New(99)
	for i := 0; i < 150; i++ {
		id := r.Uint64n(1 << 11)
		data := fillBlock(uint64(i) * 17)
		if err := st.Write(id, data); err != nil {
			t.Fatal(err)
		}
		want[id] = data
	}
	// Batches with duplicate ids (dedup fan-out) and a write batch.
	ids := []uint64{1, 5, 1, 9, 5}
	if _, err := st.ReadBatch(ids); err != nil {
		t.Fatal(err)
	}
	wids := []uint64{2, 1002, 2002}
	wdata := [][]byte{fillBlock(7001), fillBlock(7002), fillBlock(7003)}
	if err := st.WriteBatch(wids, wdata); err != nil {
		t.Fatal(err)
	}
	for i, id := range wids {
		want[id] = wdata[i]
	}
	before := st.Traffic()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewShardedStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if after := re.Traffic(); after != before {
		t.Fatalf("traffic counters not restored:\n before %+v\n after  %+v", before, after)
	}
	for id, data := range want {
		got, err := re.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("block %d diverged after reopen", id)
		}
	}
	// Unwritten blocks still read as zeros through the recovered engine.
	zero, err := re.Read(2047)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, make([]byte, BlockSize)) {
		t.Fatal("unwritten block must read as zeros after recovery")
	}
}

// crashEnv tells a re-exec'd test binary to play the dying process of a
// crash test: write through a durable store, then exit WITHOUT Close. The
// parent reopens the directory afterwards — a genuine cross-process kill,
// which also releases the directory flock the way a real crash does.
// crashEngineEnv picks the storage engine (empty means WAL).
const crashEnv = "PALERMO_TEST_CRASH_DIR"
const crashEngineEnv = "PALERMO_TEST_CRASH_ENGINE"

// crashChild runs the dying life if this process is the re-exec'd child;
// returns false in the parent.
func crashChild(t *testing.T, checkpointEvery int, write func(st *Store, i uint64) error) bool {
	dir := os.Getenv(crashEnv)
	if dir == "" {
		return false
	}
	engine := os.Getenv(crashEngineEnv)
	if engine == "" {
		engine = BackendWAL
	}
	st, err := NewStore(StoreConfig{
		Blocks: 1 << 10, Engine: engine, Dir: dir,
		GroupCommit: 1, CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := write(st, i); err != nil {
			t.Fatal(err)
		}
	}
	os.Exit(0) // die without Close: no final checkpoint, no flush
	return true
}

// rerunAsCrashChild re-execs the test binary to run the named test's
// child branch against dir under the given engine, and waits for it to
// die.
func rerunAsCrashChild(t *testing.T, test, dir, engine string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^"+test+"$")
	cmd.Env = append(os.Environ(), crashEnv+"="+dir, crashEngineEnv+"="+engine)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("crash child failed: %v\n%s", err, out)
	}
}

// TestStoreWALCrashRecovery: killing a store process without Close
// preserves every group-committed write; recovery replays the tail
// through the engine and reads stay epoch-consistent.
func TestStoreWALCrashRecovery(t *testing.T) {
	if crashChild(t, 0, func(st *Store, i uint64) error {
		return st.Write(i*19%(1<<10), fillBlock(i+500))
	}) {
		return
	}
	dir := t.TempDir()
	rerunAsCrashChild(t, "TestStoreWALCrashRecovery", dir, BackendWAL)

	// Even a dir that only ever crashed (no clean Close) carries its
	// creation checkpoint, so a wrong key is rejected at open instead of
	// decrypting sealed payloads into garbage.
	if _, err := NewStore(StoreConfig{
		Blocks: 1 << 10, Backend: BackendWAL, Dir: dir,
		GroupCommit: 1, Key: []byte("wrong-key-16byte"),
	}); err == nil {
		t.Fatal("crashed dir reopened under a different key must fail")
	}

	re, err := NewStore(StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir, GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep := re.Traffic(); rep.Writes != 50 {
		t.Fatalf("recovered %d writes, want 50", rep.Writes)
	}
	for i := uint64(0); i < 50; i++ {
		id := i * 19 % (1 << 10)
		got, err := re.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillBlock(i+500)) {
			t.Fatalf("block %d diverged after crash recovery", id)
		}
	}
}

// TestStoreWALCrashAfterCheckpoint: a kill after periodic checkpoints
// recovers checkpointed state exactly plus the replayed tail (the child
// writes 50 blocks at CheckpointEvery 20: two checkpoints + a tail).
func TestStoreWALCrashAfterCheckpoint(t *testing.T) {
	if crashChild(t, 20, func(st *Store, i uint64) error {
		return st.Write(i, fillBlock(i))
	}) {
		return
	}
	dir := t.TempDir()
	rerunAsCrashChild(t, "TestStoreWALCrashAfterCheckpoint", dir, BackendWAL)

	re, err := NewStore(StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir, CheckpointEvery: 20, GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := uint64(0); i < 50; i++ {
		got, err := re.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillBlock(i)) {
			t.Fatalf("block %d diverged (checkpoint+tail recovery)", i)
		}
	}
}

// TestWALDirLocked: a live store's directory cannot be opened by a second
// store instance; after Close it can.
func TestWALDirLocked(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir}
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(cfg); err == nil {
		t.Fatal("second open of a live store directory must fail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewStore(cfg)
	if err != nil {
		t.Fatalf("reopen after Close rejected: %v", err)
	}
	re.Close()
}

// TestErrClosedSentinel is the regression test for the ErrClosed
// satellite: every post-Close operation fails with something errors.Is
// recognizes, on both store flavors and the batch paths.
func TestErrClosedSentinel(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	if err := st.Write(1, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want errors.Is(_, ErrClosed)", err)
	}
	if _, err := st.Read(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after Close = %v, want errors.Is(_, ErrClosed)", err)
	}
	if _, err := st.ReadBatch([]uint64{1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadBatch after Close = %v, want errors.Is(_, ErrClosed)", err)
	}
	if err := st.WriteBatch([]uint64{1}, [][]byte{buf}); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteBatch after Close = %v, want errors.Is(_, ErrClosed)", err)
	}

	s, err := NewStore(StoreConfig{Blocks: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if err := s.Write(1, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("Store.Write after Close = %v, want errors.Is(_, ErrClosed)", err)
	}
	if _, err := s.Read(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Store.Read after Close = %v, want errors.Is(_, ErrClosed)", err)
	}
}

// TestWALWrongKeyRejected: reopening a durable store under a different
// AES key must fail at open (the sealed checkpoint does not decode), not
// corrupt reads later.
func TestWALWrongKeyRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir}
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(1, fillBlock(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Key = []byte("wrong-key-16byte")
	if _, err := NewStore(bad); err == nil {
		t.Fatal("reopen under a different key must fail")
	}
}

// TestWALConfigValidation covers the backend plumbing's eager rejections.
func TestWALConfigValidation(t *testing.T) {
	if _, err := NewStore(StoreConfig{Backend: "tape"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := NewStore(StoreConfig{Backend: BackendWAL}); err == nil {
		t.Fatal("wal without Dir accepted")
	}
	if _, err := NewStore(StoreConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("Dir with memory backend silently ignored")
	}

	// Manifest pins geometry: reopening with different shards/blocks fails.
	dir := t.TempDir()
	st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 10, Shards: 2, Backend: BackendWAL, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 10, Shards: 4, Backend: BackendWAL, Dir: dir}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if _, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 11, Shards: 2, Backend: BackendWAL, Dir: dir}); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}

// TestWALStoreShardedInterop: a 1-shard ShardedStore and a Store share
// the on-disk layout, so either flavor can reopen the other's directory.
func TestWALStoreShardedInterop(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(33, fillBlock(33)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 10, Shards: 1, Backend: BackendWAL, Dir: dir, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	got, err := sh.Read(33)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fillBlock(33)) {
		t.Fatal("1-shard ShardedStore could not read the Store's block")
	}
}

// TestWALReopenContinuesSealing: epochs keep rising across a reopen, so
// overwrites after recovery never reuse an IV and still read back last.
func TestWALReopenContinuesSealing(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir}
	for round := uint64(0); round < 3; round++ {
		st, err := NewStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 10; i++ {
			if err := st.Write(i, fillBlock(round*100+i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 10; i++ {
			got, err := st.Read(i)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !bytes.Equal(got, fillBlock(round*100+i)) {
				t.Fatalf("round %d: block %d stale", round, i)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALRecoveredStoreStaysDeterministic: two stores recovered from
// identical directories serve identical traffic for identical request
// sequences (the §5 determinism contract extends across restarts).
func TestWALRecoveredStoreStaysDeterministic(t *testing.T) {
	mk := func() string {
		dir := t.TempDir()
		st, err := NewStore(StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 40; i++ {
			if err := st.Write(i*7%(1<<10), fillBlock(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	drive := func(dir string) TrafficReport {
		st, err := NewStore(StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: dir, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		for i := uint64(0); i < 60; i++ {
			if i%2 == 0 {
				if _, err := st.Read(i % 40); err != nil {
					t.Fatal(err)
				}
			} else if err := st.Write(i, fillBlock(i)); err != nil {
				t.Fatal(err)
			}
		}
		return st.Traffic()
	}
	a, b := drive(mk()), drive(mk())
	if a != b {
		t.Fatalf("recovered stores diverged:\n a %+v\n b %+v", a, b)
	}
}

// TestStoreBlockfileCloseReopen: the blockfile engine honors the same
// clean-shutdown contract as the WAL — Close checkpoints everything, and
// a reopen restores payloads and traffic counters bit-exactly. The reopen
// also leaves Engine unset on purpose: DetectEngine reads the manifest,
// so tools never have to restate the engine of an existing directory.
func TestStoreBlockfileCloseReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Blocks: 1 << 10, Engine: BackendBlockfile, Dir: dir, Seed: 7}

	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64][]byte)
	r := rng.New(42)
	for i := 0; i < 300; i++ {
		id := r.Uint64n(1 << 10)
		if i%3 == 0 {
			if _, err := st.Read(id); err != nil {
				t.Fatal(err)
			}
			continue
		}
		data := fillBlock(uint64(i))
		if err := st.Write(id, data); err != nil {
			t.Fatal(err)
		}
		want[id] = data
	}
	before := st.Traffic()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if got := DetectEngine(dir); got != BackendBlockfile {
		t.Fatalf("DetectEngine = %q, want %q", got, BackendBlockfile)
	}
	recfg := cfg
	recfg.Engine = DetectEngine(dir)
	re, err := NewStore(recfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if after := re.Traffic(); after != before {
		t.Fatalf("traffic counters not restored:\n before %+v\n after  %+v", before, after)
	}
	for id, data := range want {
		got, err := re.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("block %d diverged after reopen", id)
		}
	}
}

// TestStoreBlockfileCrashRecovery: the §7 crash discipline holds on the
// blockfile engine too — killing the process without Close preserves
// every group-committed write, recovery replays the tail (including
// orphan slots whose log record was lost) through the engine, and a
// crashed dir still rejects a wrong key at open.
func TestStoreBlockfileCrashRecovery(t *testing.T) {
	if crashChild(t, 0, func(st *Store, i uint64) error {
		return st.Write(i*19%(1<<10), fillBlock(i+500))
	}) {
		return
	}
	dir := t.TempDir()
	rerunAsCrashChild(t, "TestStoreBlockfileCrashRecovery", dir, BackendBlockfile)

	if _, err := NewStore(StoreConfig{
		Blocks: 1 << 10, Engine: BackendBlockfile, Dir: dir,
		GroupCommit: 1, Key: []byte("wrong-key-16byte"),
	}); err == nil {
		t.Fatal("crashed dir reopened under a different key must fail")
	}

	re, err := NewStore(StoreConfig{Blocks: 1 << 10, Engine: BackendBlockfile, Dir: dir, GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep := re.Traffic(); rep.Writes != 50 {
		t.Fatalf("recovered %d writes, want 50", rep.Writes)
	}
	for i := uint64(0); i < 50; i++ {
		id := i * 19 % (1 << 10)
		got, err := re.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillBlock(i+500)) {
			t.Fatalf("block %d diverged after crash recovery", id)
		}
	}
}

// TestBlockfileDirLocked: the blockfile engine holds the same directory
// flock as the WAL, so a live store's directory cannot be double-opened.
func TestBlockfileDirLocked(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Blocks: 1 << 10, Engine: BackendBlockfile, Dir: dir}
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(cfg); err == nil {
		t.Fatal("second open of a live store directory must fail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewStore(cfg)
	if err != nil {
		t.Fatalf("reopen after Close rejected: %v", err)
	}
	re.Close()
}

// TestBlockfileReopenContinuesSealing: epochs keep rising across
// blockfile reopens, so overwrites after recovery never reuse an IV and
// still read back last — including after a crash, where the recovered
// epoch reservation forces the sealer past any slot the log lost.
func TestBlockfileReopenContinuesSealing(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Blocks: 1 << 10, Engine: BackendBlockfile, Dir: dir}
	for round := uint64(0); round < 3; round++ {
		st, err := NewStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 10; i++ {
			if err := st.Write(i, fillBlock(round*100+i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 10; i++ {
			got, err := st.Read(i)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !bytes.Equal(got, fillBlock(round*100+i)) {
				t.Fatalf("round %d: block %d stale", round, i)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineAliasAndMismatchValidation covers the Engine/Backend plumbing:
// the two fields are aliases that must agree when both are set, the
// manifest pins a directory's engine so reopening under the other one is
// refused, and CryptoWorkers rejects negatives eagerly.
func TestEngineAliasAndMismatchValidation(t *testing.T) {
	// Engine and Backend disagreeing is a configuration error.
	if _, err := NewStore(StoreConfig{
		Blocks: 1 << 10, Engine: BackendBlockfile, Backend: BackendWAL, Dir: t.TempDir(),
	}); err == nil {
		t.Fatal("disagreeing Engine and Backend accepted")
	}
	// Both set and equal is fine (belt and suspenders, not a conflict).
	st, err := NewStore(StoreConfig{
		Blocks: 1 << 10, Engine: BackendWAL, Backend: BackendWAL, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Unknown engine names fail the same way unknown backends always have.
	if _, err := NewStore(StoreConfig{Blocks: 1 << 10, Engine: "tape", Dir: t.TempDir()}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := NewStore(StoreConfig{Blocks: 1 << 10, CryptoWorkers: -1}); err == nil {
		t.Fatal("negative CryptoWorkers accepted")
	}

	// The manifest pins the engine: a WAL dir refuses to reopen as
	// blockfile and vice versa (silently mixing formats would corrupt).
	walDir := t.TempDir()
	st, err = NewStore(StoreConfig{Blocks: 1 << 10, Engine: BackendWAL, Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := NewStore(StoreConfig{Blocks: 1 << 10, Engine: BackendBlockfile, Dir: walDir}); err == nil {
		t.Fatal("WAL dir reopened as blockfile")
	}
	if got := DetectEngine(walDir); got != BackendWAL {
		t.Fatalf("DetectEngine(walDir) = %q, want %q", got, BackendWAL)
	}
	bfDir := t.TempDir()
	st, err = NewStore(StoreConfig{Blocks: 1 << 10, Engine: BackendBlockfile, Dir: bfDir})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := NewStore(StoreConfig{Blocks: 1 << 10, Engine: BackendWAL, Dir: bfDir}); err == nil {
		t.Fatal("blockfile dir reopened as wal")
	}
	// A pre-Engine manifest (no engine key) means WAL: Backend's historic
	// spelling still opens it.
	st, err = NewStore(StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: walDir})
	if err != nil {
		t.Fatalf("legacy Backend spelling rejected: %v", err)
	}
	st.Close()
}
