package palermo

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §3). Each benchmark regenerates its figure as a
// text table (logged once) and reports the headline number as a benchmark
// metric, so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Scale: the paper measures up to 50M ORAM requests per point; benches
// default to hundreds per point (thousands of DRAM events each), which is
// where the shapes stabilize. Raise with -benchtime or the PALERMO_REQS
// environment variable for tighter numbers.

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"palermo/internal/rng"
)

func benchOpts(requests int) Options {
	if s := os.Getenv("PALERMO_REQS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			requests = v
		}
	}
	// PALERMO_WORKERS pins the sweep worker pool (0/unset = all cores,
	// 1 = serial), e.g. to compare 1-worker vs 4-worker wall-clock on
	// BenchmarkFig10_EndToEnd. Results are identical at any setting.
	workers := 0
	if s := os.Getenv("PALERMO_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			workers = v
		}
	}
	return Options{Requests: requests, Workers: workers}
}

// BenchmarkStoreOps measures the synchronous single-tree Store: the
// serving-path baseline the sharded service is compared against
// (ops/s and allocs/op are the tracked metrics).
func BenchmarkStoreOps(b *testing.B) {
	st, err := NewStore(StoreConfig{Blocks: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0xA5}, BlockSize)
	populateStore(b, st, buf)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := r.Uint64n(1 << 16)
		if id%10 == 0 {
			if err := st.Write(id, buf); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := st.Read(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// populateStore writes every block once before the timer starts, so the
// 90/10 mix reads a loaded store. Without this the write ids (id%10 == 0)
// and read ids (everything else) are disjoint sets and every read misses
// the backend entirely — which both understates read cost and makes the
// blockfile slot read cache unmeasurable (an absent slot is not a cache
// event).
func populateStore(b *testing.B, st *Store, buf []byte) {
	b.Helper()
	for id := uint64(0); id < 1<<16; id++ {
		if err := st.Write(id, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPipelineDepth reads the PALERMO_PIPELINE override (0/unset = the
// config default; 1 = the serial executor) so the CI pipeline smoke and
// BENCH_pipeline.json can compare depths on identical benchmarks.
func benchPipelineDepth() int {
	if s := os.Getenv("PALERMO_PIPELINE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

// benchEngine / benchCryptoWorkers read the PALERMO_ENGINE and
// PALERMO_CRYPTO_WORKERS overrides so the CI engine smoke and
// BENCH_engine.json can compare storage engines and crypto-pool widths on
// the identical benchmark: PALERMO_ENGINE picks "wal" (default) or
// "blockfile", PALERMO_CRYPTO_WORKERS sets the parallel seal/unseal pool
// (0/unset = inline crypto).
func benchEngine() string {
	if s := os.Getenv("PALERMO_ENGINE"); s != "" {
		return s
	}
	return BackendWAL
}

func benchCryptoWorkers() int {
	if s := os.Getenv("PALERMO_CRYPTO_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

// BenchmarkStoreOpsDurable is BenchmarkStoreOps over a durable engine
// (PALERMO_ENGINE; WAL by default): same 90/10 read/write mix, every
// write committed under the group-commit policy. The delta against
// BenchmarkStoreOps is the durability tax the BENCH_persist.json record
// tracks; the delta between PALERMO_PIPELINE=1 and the default depth is
// the pipeline win BENCH_pipeline.json tracks; the engine and
// crypto-worker deltas are BENCH_engine.json's.
func BenchmarkStoreOpsDurable(b *testing.B) {
	slotCache := benchSlotCache()
	if benchEngine() != BackendBlockfile {
		slotCache = 0 // the cache is a blockfile feature
	}
	st, err := NewStore(StoreConfig{
		Blocks:         1 << 16,
		Engine:         benchEngine(),
		Dir:            b.TempDir(),
		PipelineDepth:  benchPipelineDepth(),
		CryptoWorkers:  benchCryptoWorkers(),
		SlotCacheBytes: slotCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	buf := bytes.Repeat([]byte{0xA5}, BlockSize)
	populateStore(b, st, buf)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := r.Uint64n(1 << 16)
		if id%10 == 0 {
			if err := st.Write(id, buf); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := st.Read(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	if tr := st.Traffic(); tr.SlotCacheHits+tr.SlotCacheMisses > 0 {
		b.ReportMetric(float64(tr.SlotCacheHits)/float64(tr.SlotCacheHits+tr.SlotCacheMisses)*100, "slot_cache_hit_pct")
	}
}

// BenchmarkShardedStoreOps measures the concurrent service layer at 1, 2,
// and 4 shards under GOMAXPROCS parallel closed-loop clients. On a 4-core
// runner, 4 shards should deliver >= 2x the 1-shard ops/s (the serving-path
// analogue of Fig 11's request-level-parallelism scaling).
func BenchmarkShardedStoreOps(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 16, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var clientSeq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// b.Error, not b.Fatal: Fatal must not run off the
				// benchmark goroutine.
				r := rng.New(1000 + clientSeq.Add(1))
				buf := bytes.Repeat([]byte{0x5A}, BlockSize)
				for pb.Next() {
					id := r.Uint64n(1 << 16)
					if id%10 == 0 {
						if err := st.Write(id, buf); err != nil {
							b.Error(err)
							return
						}
					} else {
						if _, err := st.Read(id); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// benchTreeTopLevels / benchPrefetch read the PALERMO_TREETOP and
// PALERMO_PREFETCH overrides (mirroring PALERMO_PIPELINE) so the CI bench
// smoke and BENCH_prefetch.json can compare serving configurations on the
// identical benchmark: PALERMO_TREETOP pins the resident tree-top depth
// (0/unset = byte-budget default), PALERMO_PREFETCH=1 turns the
// batch-admission planner on.
func benchTreeTopLevels() int {
	if s := os.Getenv("PALERMO_TREETOP"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

func benchPrefetch() bool {
	return os.Getenv("PALERMO_PREFETCH") == "1"
}

// benchPrefetchDepth / benchPosmapPrefetch / benchSlotCache read the
// PALERMO_PREFETCH_DEPTH, PALERMO_POSMAP_PREFETCH, and PALERMO_SLOT_CACHE
// overrides so the CI bench smoke and the BENCH records can sweep the deep
// planner's look-ahead (batches; 0/unset = the one-batch default), the
// posmap-group sibling announces (=1 turns them on), and the blockfile
// slot read-cache budget (bytes per shard; 0/unset = cache off) on the
// identical benchmarks.
func benchPrefetchDepth() int {
	if s := os.Getenv("PALERMO_PREFETCH_DEPTH"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

func benchPosmapPrefetch() bool {
	return os.Getenv("PALERMO_POSMAP_PREFETCH") == "1"
}

func benchSlotCache() int {
	if s := os.Getenv("PALERMO_SLOT_CACHE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

// BenchmarkShardedServing is the serving-path configuration benchmark:
// GOMAXPROCS closed-loop clients issuing Zipf-skewed (θ=0.99) 8-id read
// batches with a 10% write mix against 4 shards — the workload the
// tree-top cache and prefetch planner are built for. Sweep it with
// PALERMO_TREETOP / PALERMO_PREFETCH / PALERMO_PIPELINE to regenerate
// BENCH_prefetch.json and the EXPERIMENTS.md table.
func BenchmarkShardedServing(b *testing.B) {
	st, err := NewShardedStore(ShardedStoreConfig{
		Blocks: 1 << 16, Shards: 4,
		PipelineDepth:  benchPipelineDepth(),
		TreeTopLevels:  benchTreeTopLevels(),
		Prefetch:       benchPrefetch(),
		PrefetchDepth:  benchPrefetchDepth(),
		PosmapPrefetch: benchPosmapPrefetch(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	var clientSeq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(2000 + clientSeq.Add(1))
		z := rng.NewZipf(r, 1<<16, 0.99)
		buf := bytes.Repeat([]byte{0x3C}, BlockSize)
		ids := make([]uint64, 8)
		for pb.Next() {
			if r.Uint64n(10) == 0 {
				if err := st.Write(z.Next(), buf); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			for i := range ids {
				ids[i] = z.Next()
			}
			if _, err := st.ReadBatch(ids); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	tr := st.Traffic()
	if ops := tr.Reads + tr.Writes; ops > 0 {
		b.ReportMetric(float64(tr.DRAMReads+tr.DRAMWrites)/float64(ops), "dram_lines/op")
		b.ReportMetric(float64(tr.TreeTopHits)/float64(ops), "treetop_hits/op")
	}
	if tr.PrefetchIssued > 0 {
		b.ReportMetric(float64(tr.PrefetchUsed)/float64(tr.PrefetchIssued)*100, "prefetch_used_pct")
	}
}

func BenchmarkFig03_RingBandwidth(b *testing.B) {
	var sync float64
	for i := 0; i < b.N; i++ {
		res, err := Fig3(benchOpts(600))
		if err != nil {
			b.Fatal(err)
		}
		sync = res.SyncTotal()
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(sync*100, "sync_pct") // paper: 72.4
}

func BenchmarkFig04_PrefetchDummies(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := Fig4(benchOpts(500))
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range res.PrDummy {
			if d > peak {
				peak = d
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(peak*100, "peak_dummy_pct") // paper: 77.3 at pf=4
}

func BenchmarkFig09_SecurityLatency(b *testing.B) {
	var worstMI float64
	for i := 0; i < b.N; i++ {
		res, err := Fig9(benchOpts(2500))
		if err != nil {
			b.Fatal(err)
		}
		worstMI = 0
		for _, row := range res.Rows {
			if row.MutualInfo > worstMI {
				worstMI = row.MutualInfo
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(worstMI, "worst_mutual_info_bits") // paper: <= 0.006
}

func BenchmarkFig10_EndToEnd(b *testing.B) {
	var palermoGM, pfGM float64
	for i := 0; i < b.N; i++ {
		res, err := Fig10(benchOpts(500))
		if err != nil {
			b.Fatal(err)
		}
		for p, proto := range res.Protocols {
			switch proto {
			case ProtoPalermo:
				palermoGM = res.GMean[p]
			case ProtoPalermoPF:
				pfGM = res.GMean[p]
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(palermoGM, "palermo_gmean_x") // paper: 2.4
	b.ReportMetric(pfGM, "palermo_pf_gmean_x")   // paper: 3.1
}

func BenchmarkFig11_Parallelism(b *testing.B) {
	var outR, bwR float64
	for i := 0; i < b.N; i++ {
		res, err := Fig11(benchOpts(600))
		if err != nil {
			b.Fatal(err)
		}
		outR, bwR = res.Ratios()
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(outR, "outstanding_ratio_x") // paper: 2.8
	b.ReportMetric(bwR, "bandwidth_ratio_x")    // paper: 2.2
}

func BenchmarkFig12_StashBound(b *testing.B) {
	var worst int
	for i := 0; i < b.N; i++ {
		res, err := Fig12(benchOpts(1000))
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, m := range res.Max {
			if m > worst {
				worst = m
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(float64(worst), "max_stash_tags") // paper: 228-237 < 256
}

func BenchmarkFig13_PrefetchSweep(b *testing.B) {
	var llmBest float64
	for i := 0; i < b.N; i++ {
		res, err := Fig13(benchOpts(500))
		if err != nil {
			b.Fatal(err)
		}
		for w, wl := range res.Workloads {
			if wl != "llm" {
				continue
			}
			for _, v := range res.Speedup[w] {
				if v > llmBest {
					llmBest = v
				}
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(llmBest, "llm_best_speedup_x") // paper: ~4.3 at pf=8
}

func BenchmarkFig14a_SweepZ(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := Fig14a(benchOpts(400))
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Speedup[2] // (16,27,20), the adopted configuration
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(gain, "z16_speedup_x") // paper: up to 1.8
}

func BenchmarkFig14b_SweepPE(b *testing.B) {
	var at8 float64
	for i := 0; i < b.N; i++ {
		res, err := Fig14b(benchOpts(400))
		if err != nil {
			b.Fatal(err)
		}
		at8 = res.Speedup[3]
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(at8, "pe8_speedup_x") // paper: ~2.2
}

func BenchmarkFig15_AreaPower(b *testing.B) {
	var area, power float64
	for i := 0; i < b.N; i++ {
		m := Fig15(8)
		area, power = m.TotalArea(), m.TotalPower()
		if i == 0 {
			b.Log("\n" + m.String())
		}
	}
	b.ReportMetric(area, "area_mm2") // paper: 5.78
	b.ReportMetric(power, "power_w") // paper: 2.14
}

func BenchmarkTab02_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := TableII()
		if i == 0 {
			b.Log("\n" + s + TableIII())
		}
	}
}

func BenchmarkAblation_ERHoisting(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := AblationHoisting(benchOpts(500))
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Gain()
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(gain, "hoisting_gain_x")
}

func BenchmarkAblation_TreeTopCache(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := AblationTreeTop(benchOpts(500))
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Gain()
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(gain, "treetop_gain_x")
}

func BenchmarkAblation_SWGranularity(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := AblationCommitGranularity(benchOpts(500))
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Gain()
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
	b.ReportMetric(gain, "fine_sw_gain_x")
}

func BenchmarkExt_PathMesh(b *testing.B) {
	var pathG, ringG float64
	for i := 0; i < b.N; i++ {
		pg, rg, err := AblationPathMesh(benchOpts(500))
		if err != nil {
			b.Fatal(err)
		}
		pathG, ringG = pg.Gain(), rg.Gain()
		if i == 0 {
			b.Log("\n" + pg.String() + "\n" + rg.String())
		}
	}
	b.ReportMetric(pathG, "path_mesh_gain_x") // §IV-E: limited
	b.ReportMetric(ringG, "ring_mesh_gain_x") // §IV-E: large
}

func BenchmarkExt_TenantIsolation(b *testing.B) {
	var mi float64
	for i := 0; i < b.N; i++ {
		rep, err := TenantIsolation(benchOpts(2000))
		if err != nil {
			b.Fatal(err)
		}
		mi = rep.MutualInfo
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
	b.ReportMetric(mi, "tenant_mi_bits") // §VI: ~0
}
