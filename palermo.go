// Package palermo is the public API of this repository: a from-scratch Go
// implementation of Palermo — the protocol-hardware co-design for oblivious
// memory from "Palermo: Improving the Performance of Oblivious Memory using
// Protocol-Hardware Co-Design" (HPCA 2025) — together with every baseline
// and substrate its evaluation depends on.
//
// The facade assembles, per protocol, a functional ORAM engine (real trees,
// stashes, recursive position maps), a timing controller (the baseline
// serial discipline or Palermo's PE mesh), a cycle-approximate DDR4-3200
// memory system, and a Table II workload generator, and runs them under one
// discrete-event simulation:
//
//	res, err := palermo.Run(palermo.ProtoPalermo, "llm", palermo.Options{})
//	fmt.Println(res.Result) // throughput, bandwidth, latencies, stash, ...
//
// Every figure and table of the paper's evaluation has a Fig*/Table*
// function in this package (see experiments.go; EXPERIMENTS.md records the
// paper-vs-measured values and README.md the quickstart). Multi-cell
// experiments fan out across a worker pool sized by Options.Workers with
// results collected in grid order, so a parallel sweep is bit-identical to
// a serial one.
package palermo

import (
	"fmt"

	"palermo/internal/baselines"
	"palermo/internal/core"
	"palermo/internal/ctrl"
	"palermo/internal/dram"
	"palermo/internal/oram"
	"palermo/internal/sim"
	"palermo/internal/workload"
)

// Protocol selects an ORAM design from the paper's evaluation (§VII-B).
type Protocol int

// Protocols, in the paper's Fig 10 order.
const (
	ProtoPathORAM  Protocol = iota // Stefanov et al., the normalization baseline
	ProtoRingORAM                  // Ren et al. (Z,S,A)=(4,5,3)
	ProtoPageORAM                  // Rajat et al.: sibling accesses, small buckets
	ProtoPrORAM                    // Yu et al. + LAORAM fat tree, swept prefetch
	ProtoIRORAM                    // Raoufi et al.: posmap bypass, mid-tree shrink
	ProtoPalermoSW                 // Palermo protocol, software-only sync
	ProtoPalermo                   // Palermo protocol + PE-mesh controller
	ProtoPalermoPF                 // Palermo with prefetch enabled
)

// Protocols lists all evaluated designs in Fig 10 order.
func Protocols() []Protocol {
	return []Protocol{
		ProtoPathORAM, ProtoRingORAM, ProtoPageORAM, ProtoPrORAM,
		ProtoIRORAM, ProtoPalermoSW, ProtoPalermo, ProtoPalermoPF,
	}
}

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoPathORAM:
		return "PathORAM"
	case ProtoRingORAM:
		return "RingORAM"
	case ProtoPageORAM:
		return "PageORAM"
	case ProtoPrORAM:
		return "PrORAM"
	case ProtoIRORAM:
		return "IR-ORAM"
	case ProtoPalermoSW:
		return "Palermo-SW"
	case ProtoPalermo:
		return "Palermo"
	case ProtoPalermoPF:
		return "Palermo+PF"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Options configures a run. The zero value reproduces the paper's Table III
// system at a laptop-scale request count.
type Options struct {
	Lines    uint64 // protected cache lines (default 2^28 = 16 GB)
	Requests int    // measured ORAM requests (default 1500)
	Warmup   int    // warmup requests (default = Requests, i.e. half the run)

	Prefetch int // group length for ProtoPrORAM / ProtoPalermoPF (default per workload)
	Columns  int // PE columns for Palermo (default 8, Table III)

	// Z, S, A override the RingORAM/Palermo protocol parameters
	// (default (4,5,3) for RingORAM, (16,27,20) for Palermo, Fig 14a).
	Z, S, A int

	Seed        uint64 // default 1
	KeepLatency bool   // retain per-request latencies and leaves
	TrackStash  bool   // record stash occupancy over progress (Fig 12)

	// Workers sizes the sweep runner's worker pool for multi-cell
	// experiments (the Fig*/Ablation* grids): 0 means all cores
	// (runtime.GOMAXPROCS), 1 forces serial execution. It only affects
	// wall-clock time — each cell owns a private engine, DRAM model, and
	// seeded RNG, and results are collected in grid order, so sweep
	// results are bit-identical at any worker count.
	Workers int

	// StashThreshold is PrORAM's background-eviction trigger (default 1024,
	// the Fig 4 configuration).
	StashThreshold int

	// LLCLines sizes the prefetch filter (default 131072 = Table III 8 MB L3).
	LLCLines uint64

	// noFatTree disables PrORAM's LAORAM fat-tree shape (Fig 4's plain
	// PrORAM series); set only by the experiment harness in this package.
	noFatTree bool
}

func (o *Options) defaults() {
	if o.Lines == 0 {
		o.Lines = 1 << 28
	}
	if o.Requests == 0 {
		o.Requests = 1500
	}
	if o.Warmup == 0 {
		o.Warmup = o.Requests
	}
	if o.Columns == 0 {
		o.Columns = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.StashThreshold == 0 {
		o.StashThreshold = 1024
	}
	if o.LLCLines == 0 {
		o.LLCLines = 131072
	}
}

// DefaultPrefetch returns the prefetch length this harness uses for a
// workload when Options.Prefetch is 0: embedding workloads prefetch up to
// their row length, streaming workloads a DRAM-friendly burst, and
// low-locality workloads disable prefetch (the outcome of the paper's
// per-workload sweep in §VIII-A).
func DefaultPrefetch(wl string) int {
	if rows := workload.RowLines(wl); rows > 0 {
		if rows > 8 {
			return 8
		}
		return int(rows)
	}
	switch wl {
	case "stm":
		return 8
	case "lbm":
		return 4
	case "mcf":
		return 2
	default:
		return 1
	}
}

// RunResult couples a controller Result with run identity and trace-side
// counters.
type RunResult struct {
	ctrl.Result
	Protocol  Protocol
	Workload  string
	Prefetch  int
	NumLeaves uint64 // data-tree leaf count (for leaf-uniformity analysis)
	LLCHits   uint64 // trace accesses filtered by the LLC during measurement
}

// Run executes one protocol on one Table II workload and returns the
// measured window's results. Deterministic for a given Options.Seed.
func Run(p Protocol, wl string, o Options) (RunResult, error) {
	o.defaults()
	gen, err := workload.New(wl, o.Lines, o.Seed)
	if err != nil {
		return RunResult{}, err
	}

	pf := 1
	if p == ProtoPrORAM || p == ProtoPalermoPF {
		pf = o.Prefetch
		if pf == 0 {
			pf = DefaultPrefetch(wl)
		}
	}
	filter := workload.NewPrefetchFilter(gen, pf, o.LLCLines)

	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	runCfg := ctrl.RunConfig{
		Requests:    o.Requests,
		Warmup:      o.Warmup,
		KeepLatency: o.KeepLatency,
		TrackStash:  o.TrackStash,
	}
	var hitsAtMeasure uint64
	runCfg.OnMeasureStart = func() { hitsAtMeasure = filter.Hits }

	res := RunResult{Protocol: p, Workload: wl, Prefetch: pf}
	var out ctrl.Result

	switch p {
	case ProtoPathORAM, ProtoPageORAM, ProtoPrORAM, ProtoIRORAM:
		e, numLeaves, err := buildPathFamily(p, o, pf)
		if err != nil {
			return RunResult{}, err
		}
		res.NumLeaves = numLeaves
		if p == ProtoPrORAM {
			runCfg.DummyPolicy = baselines.StashThresholdPolicy(e, o.StashThreshold)
		}
		out = ctrl.Serial{Name: p.String()}.Run(&eng, mem, e, filter, runCfg)

	case ProtoRingORAM:
		cfg := oram.BandwidthRingConfig()
		cfg.NLines = o.Lines
		cfg.Seed = o.Seed
		applyZSA(&cfg, o)
		e, err := oram.NewRing(cfg)
		if err != nil {
			return RunResult{}, err
		}
		res.NumLeaves = e.Space(0).Geo.NumLeaves()
		out = ctrl.Serial{Name: p.String()}.Run(&eng, mem, e, filter, runCfg)

	case ProtoPalermoSW:
		e, err := buildPalermoRing(o, 1)
		if err != nil {
			return RunResult{}, err
		}
		res.NumLeaves = e.Space(0).Geo.NumLeaves()
		out = ctrl.Serial{Name: p.String(), OverlapDataRP: true}.Run(&eng, mem, e, filter, runCfg)

	case ProtoPalermo, ProtoPalermoPF:
		e, err := buildPalermoRing(o, pf)
		if err != nil {
			return RunResult{}, err
		}
		res.NumLeaves = e.Space(0).Geo.NumLeaves()
		out = core.Mesh{Name: p.String(), Columns: o.Columns}.Run(&eng, mem, e, filter, runCfg)

	default:
		return RunResult{}, fmt.Errorf("palermo: unknown protocol %v", p)
	}

	res.Result = out
	res.LLCHits = filter.Hits - hitsAtMeasure
	res.ServedLines += res.LLCHits
	return res, nil
}

// buildPathFamily constructs the PathORAM-based engines.
func buildPathFamily(p Protocol, o Options, pf int) (oram.Engine, uint64, error) {
	switch p {
	case ProtoPathORAM:
		cfg := oram.DefaultPathConfig()
		cfg.NLines = o.Lines
		cfg.Seed = o.Seed
		e, err := oram.NewPath(cfg)
		if err != nil {
			return nil, 0, err
		}
		return e, e.Space(0).Geo.NumLeaves(), nil
	case ProtoPageORAM:
		e, err := baselines.NewPageORAM(o.Lines, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		return e, e.Space(0).Geo.NumLeaves(), nil
	case ProtoPrORAM:
		e, err := baselines.NewPrORAM(o.Lines, pf, !o.noFatTree, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		return e, e.Space(0).Geo.NumLeaves(), nil
	case ProtoIRORAM:
		e, err := baselines.NewIRORAM(o.Lines, 4096, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		return e, e.Path().Space(0).Geo.NumLeaves(), nil
	}
	return nil, 0, fmt.Errorf("palermo: %v is not path-family", p)
}

// buildPalermoRing constructs the Palermo-variant Ring engine.
func buildPalermoRing(o Options, pf int) (*oram.Ring, error) {
	cfg := oram.PalermoRingConfig()
	cfg.NLines = o.Lines
	cfg.Seed = o.Seed
	cfg.DataSlotLines = pf
	applyRingZSA(&cfg, o)
	return oram.NewRing(cfg)
}

func applyZSA(cfg *oram.RingConfig, o Options) {
	if o.Z > 0 {
		cfg.Z = o.Z
	}
	if o.S > 0 {
		cfg.S = o.S
	}
	if o.A > 0 {
		cfg.A = o.A
	}
}

func applyRingZSA(cfg *oram.RingConfig, o Options) { applyZSA(cfg, o) }
