package palermo

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"palermo/internal/rng"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	st, err := NewStore(StoreConfig{Blocks: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func block(fill byte) []byte {
	return bytes.Repeat([]byte{fill}, BlockSize)
}

func TestStoreRoundTrip(t *testing.T) {
	st := testStore(t)
	if err := st.Write(7, block(0xAA)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(0xAA)) {
		t.Fatal("round trip failed")
	}
}

func TestStoreOverwrite(t *testing.T) {
	st := testStore(t)
	st.Write(3, block(1))
	st.Write(3, block(2))
	got, err := st.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(2)) {
		t.Fatal("overwrite not visible")
	}
}

func TestStoreUnwrittenReadsZero(t *testing.T) {
	st := testStore(t)
	got, err := st.Read(99)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("unwritten block must read as zeros")
	}
}

func TestStoreErrors(t *testing.T) {
	st := testStore(t)
	if err := st.Write(1<<14, block(0)); err == nil {
		t.Fatal("out-of-range write must error")
	}
	if _, err := st.Read(1 << 14); err == nil {
		t.Fatal("out-of-range read must error")
	}
	if err := st.Write(0, []byte("short")); err == nil {
		t.Fatal("short block must error")
	}
	if _, err := NewStore(StoreConfig{Key: []byte("bad")}); err == nil {
		t.Fatal("bad key must error")
	}
}

func TestStoreManyBlocks(t *testing.T) {
	st := testStore(t)
	r := rng.New(5)
	ref := make(map[uint64]byte)
	for i := 0; i < 1000; i++ {
		id := r.Uint64n(1 << 14)
		fill := byte(r.Uint64())
		if err := st.Write(id, block(fill)); err != nil {
			t.Fatal(err)
		}
		ref[id] = fill
	}
	for id, fill := range ref {
		got, err := st.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != fill || got[BlockSize-1] != fill {
			t.Fatalf("block %d corrupted", id)
		}
	}
}

func TestStoreTrafficReport(t *testing.T) {
	st := testStore(t)
	st.Write(1, block(1))
	st.Read(1)
	// Writes to DRAM only happen on the periodic eviction (every A=20
	// accesses), so run past one eviction boundary.
	for i := uint64(2); i < 42; i++ {
		st.Read(i)
	}
	rep := st.Traffic()
	if rep.Reads != 41 || rep.Writes != 1 {
		t.Fatalf("ops: %+v", rep)
	}
	if rep.DRAMReads == 0 || rep.DRAMWrites == 0 {
		t.Fatal("traffic not tracked")
	}
	// ORAM amplification: one op costs on the order of 100 lines.
	if rep.AmplificationFactor < 20 || rep.AmplificationFactor > 2000 {
		t.Fatalf("amplification = %.0f, implausible", rep.AmplificationFactor)
	}
	if rep.StashPeak <= 0 || rep.StashPeak > 256 {
		t.Fatalf("stash peak %d", rep.StashPeak)
	}
}

// TestStoreConfigValidation table-drives every StoreConfig field: bad
// configurations fail eagerly in NewStore with a palermo:-prefixed error
// (never as a deep failure inside the engine layer), and each field's
// legal edge values are accepted.
func TestStoreConfigValidation(t *testing.T) {
	rejected := []struct {
		field string
		cfg   StoreConfig
	}{
		{"Blocks overflow", StoreConfig{Blocks: MaxBlocks * 4}},
		{"Blocks just past cap", StoreConfig{Blocks: MaxBlocks + 1}},
		{"Key short", StoreConfig{Blocks: 1 << 10, Key: []byte("bad")}},
		{"Key off-size", StoreConfig{Blocks: 1 << 10, Key: make([]byte, 17)}},
		{"Key oversize", StoreConfig{Blocks: 1 << 10, Key: make([]byte, 64)}},
		{"Backend unknown", StoreConfig{Blocks: 1 << 10, Backend: "etcd"}},
		{"Backend memory with Dir", StoreConfig{Blocks: 1 << 10, Backend: BackendMemory, Dir: t.TempDir()}},
		{"Backend wal without Dir", StoreConfig{Blocks: 1 << 10, Backend: BackendWAL}},
		{"PipelineDepth negative", StoreConfig{Blocks: 1 << 10, PipelineDepth: -1}},
		{"PipelineDepth beyond cap", StoreConfig{Blocks: 1 << 10, PipelineDepth: MaxPipelineDepth + 1}},
	}
	for _, tc := range rejected {
		_, err := NewStore(tc.cfg)
		if err == nil {
			t.Fatalf("%s: config %+v must be rejected", tc.field, tc.cfg)
		}
		if !strings.HasPrefix(err.Error(), "palermo:") {
			t.Fatalf("%s: error %q lacks palermo: prefix", tc.field, err)
		}
	}
	accepted := []struct {
		field string
		cfg   StoreConfig
	}{
		{"Key AES-128", StoreConfig{Blocks: 1 << 10, Key: make([]byte, 16)}},
		{"Key AES-192", StoreConfig{Blocks: 1 << 10, Key: make([]byte, 24)}},
		{"Key AES-256", StoreConfig{Blocks: 1 << 10, Key: make([]byte, 32)}},
		{"Blocks zero defaults", StoreConfig{}},
		{"Seed zero defaults", StoreConfig{Blocks: 1 << 10, Seed: 0}},
		{"CheckpointEvery negative disables", StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: t.TempDir(), CheckpointEvery: -1}},
		{"GroupCommit negative defaults", StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: t.TempDir(), GroupCommit: -1}},
		{"GroupCommit synchronous", StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: t.TempDir(), GroupCommit: 1}},
		{"PipelineDepth serial", StoreConfig{Blocks: 1 << 10, PipelineDepth: 1}},
		{"PipelineDepth max", StoreConfig{Blocks: 1 << 10, PipelineDepth: MaxPipelineDepth}},
		{"PipelineDepth durable serial", StoreConfig{Blocks: 1 << 10, Backend: BackendWAL, Dir: t.TempDir(), PipelineDepth: 1}},
	}
	for _, tc := range accepted {
		st, err := NewStore(tc.cfg)
		if err != nil {
			t.Fatalf("%s: config %+v rejected: %v", tc.field, tc.cfg, err)
		}
		st.Close()
	}
}

func TestStoreDefaults(t *testing.T) {
	st, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks() != 1<<20 {
		t.Fatalf("default capacity = %d", st.Blocks())
	}
}

// ExampleStore demonstrates the adoption-facing oblivious store API.
func ExampleStore() {
	st, err := NewStore(StoreConfig{Blocks: 1 << 12})
	if err != nil {
		panic(err)
	}
	secret := make([]byte, BlockSize)
	copy(secret, "attack at dawn")
	if err := st.Write(7, secret); err != nil {
		panic(err)
	}
	got, err := st.Read(7)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(got[:14]))
	// Output: attack at dawn
}

// ExampleRun demonstrates the simulation entry point.
func ExampleRun() {
	res, err := Run(ProtoPalermo, "rand", Options{Lines: 1 << 20, Requests: 100})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Protocol, res.Workload, res.Requests)
	// Output: Palermo rand 100
}
