// Keyvalue service: concurrent clients on the sharded oblivious store.
//
// This example runs the full service stack — deterministic id striping
// across independent ORAM shards, per-shard worker goroutines behind
// bounded queues, intra-batch same-block deduplication, channel futures —
// under a small closed-loop workload, then prints what an operator would
// watch: throughput, latency percentiles, dedup fan-outs, and the DRAM
// amplification the obliviousness costs.
//
// Run: go run ./examples/keyvalue_service
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"palermo"
	"palermo/internal/rng"
)

const (
	blocks  = 1 << 16 // 4 MB of protected 64-byte blocks
	shards  = 4
	clients = 8
	opsPer  = 400
)

func main() {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{
		Blocks: blocks,
		Shards: shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Seed a few well-known records, then hammer the store from concurrent
	// clients: Zipf-skewed reads (a popular-key cache pattern) mixed with
	// writes. Each client verifies its own writes as it goes.
	hot := []byte("hot record: everyone reads this")
	pad := make([]byte, palermo.BlockSize)
	copy(pad, hot)
	if err := st.Write(0, pad); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(c + 1))
			z := rng.NewZipf(r, blocks, 0.99)
			mine := make([]byte, palermo.BlockSize)
			for i := 0; i < opsPer; i++ {
				switch {
				case i%10 == 0: // write to a client-private block
					id := uint64(c*opsPer+i) + 1
					mine[0], mine[1] = byte(c), byte(i)
					if err := st.Write(id, mine); err != nil {
						log.Fatal(err)
					}
					got, err := st.Read(id)
					if err != nil {
						log.Fatal(err)
					}
					if !bytes.Equal(got, mine) {
						log.Fatalf("client %d: lost its own write", c)
					}
				case i%25 == 0: // batch read with duplicates: dedup fan-out
					ids := []uint64{0, z.Next(), 0, z.Next(), 0}
					if _, err := st.ReadBatch(ids); err != nil {
						log.Fatal(err)
					}
				default: // skewed single read
					if _, err := st.Read(z.Next()); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	got, err := st.Read(0)
	if err != nil {
		log.Fatal(err)
	}
	stats := st.Stats()
	traffic := st.Traffic()
	fmt.Printf("record 0 after the storm: %q\n\n", got[:len(hot)])
	fmt.Printf("%d clients x %d ops on %d shards: %.0f ops/sec\n",
		clients, opsPer, shards, float64(stats.Reads+stats.Writes)/wall.Seconds())
	fmt.Printf("  read  p50 %6.0fµs  p99 %6.0fµs  (n=%d)\n",
		stats.ReadLat.P50Us, stats.ReadLat.P99Us, stats.ReadLat.N)
	fmt.Printf("  write p50 %6.0fµs  p99 %6.0fµs  (n=%d)\n",
		stats.WriteLat.P50Us, stats.WriteLat.P99Us, stats.WriteLat.N)
	fmt.Printf("  dedup fan-outs: %d (duplicate ids served by one ORAM access)\n", stats.DedupHits)
	fmt.Printf("  obliviousness cost: %.1f DRAM lines/op, stash peak %d tags\n",
		traffic.AmplificationFactor, traffic.StashPeak)
}
