// Oblivious recommendation inference (DLRM): embedding-table gathers whose
// addresses reveal user behaviour (watched items, clicked ads). This
// example contrasts the two DLRM profiles of Table II — memory-bound rm1
// (long rows, strong skew) and balanced rm2 — and shows how stash pressure
// separates PrORAM-style prefetching from Palermo's wide-block scheme on
// exactly these workloads.
//
// Run: go run ./examples/recommender
package main

import (
	"fmt"
	"log"

	"palermo"
)

func main() {
	opts := palermo.Options{Requests: 600}

	for _, wl := range []string{"rm1", "rm2"} {
		fmt.Printf("=== %s ===\n", wl)
		base, err := palermo.Run(palermo.ProtoPathORAM, wl, opts)
		if err != nil {
			log.Fatal(err)
		}
		pf := palermo.DefaultPrefetch(wl)

		pr, err := palermo.Run(palermo.ProtoPrORAM, wl, opts)
		if err != nil {
			log.Fatal(err)
		}
		pal, err := palermo.Run(palermo.ProtoPalermoPF, wl, opts)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("  prefetch length %d (embedding row)\n", pf)
		fmt.Printf("  PrORAM     : %5.2fx over PathORAM, %5.1f%% dummy requests, stash peak %d\n",
			pr.Throughput()/base.Throughput(), pr.DummyFraction()*100, pr.StashMax[0])
		fmt.Printf("  Palermo+PF : %5.2fx over PathORAM, %5.1f%% dummy requests, stash peak %d\n",
			pal.Throughput()/base.Throughput(), pal.DummyFraction()*100, pal.StashMax[0])
		fmt.Printf("  Palermo's wide blocks keep one stash tag per row; PrORAM's forced\n")
		fmt.Printf("  same-leaf mapping pays for evictions with dummy path accesses.\n\n")
	}
}
