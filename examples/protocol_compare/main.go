// Protocol comparison: run every evaluated ORAM design on one workload and
// print the Fig 10-style comparison row, with the measurements behind it
// (bandwidth, outstanding requests, stash, dummies).
//
// Run: go run ./examples/protocol_compare [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"palermo"
)

func main() {
	wl := "pr"
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	opts := palermo.Options{Requests: 600}

	base, err := palermo.Run(palermo.ProtoPathORAM, wl, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, %d measured ORAM requests, 16 GB protected space\n\n", wl, opts.Requests)
	fmt.Printf("%-12s %8s %9s %10s %8s %8s %7s\n",
		"design", "speedup", "Mmiss/s", "DRAM BW", "outst.", "dummy%", "stash")
	for _, proto := range palermo.Protocols() {
		r := base
		if proto != palermo.ProtoPathORAM {
			r, err = palermo.Run(proto, wl, opts)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-12s %7.2fx %9.2f %9.1f%% %8.1f %7.1f%% %7d\n",
			proto,
			r.Throughput()/base.Throughput(),
			r.MissesPerSecond()/1e6,
			r.Mem.BandwidthUtil*100,
			r.Mem.AvgQueueOcc*4,
			r.DummyFraction()*100,
			r.StashMax[0])
	}
	fmt.Println("\nAll designs present identical DRAM-level behaviour to the attacker;")
	fmt.Println("the table is purely a cost comparison (see cmd/palermo-sec for the security analysis).")
}
