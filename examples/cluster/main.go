// Example cluster demonstrates the multi-node serving layer end to end:
// placement by manifest, the cluster-routing client, a live shard
// migration under load, and per-node durable verification.
//
// The demo orchestrates real processes (the durable_store re-exec idiom —
// this binary re-exec'd is the node server, so no separate build step):
//
//  1. The parent writes a placement manifest splitting 4 shards across
//     two node addresses, then starts two child processes, each serving
//     its owned shards from its own WAL directory.
//  2. A ClusterClient writes a deterministic stamp across the whole id
//     space — batches scatter to both nodes — and reads it back.
//  3. Shard 0 migrates node A → node B live (snapshot + teed tail +
//     sealed engine state, then an ownership flip to geometry epoch 2).
//     The same client, still holding the epoch-1 manifest, keeps
//     operating: its misrouted frames are rejected whole with a
//     wrong-epoch status, it refetches the manifest, and retries — no op
//     lost, none duplicated.
//  4. Both nodes get SIGTERM (graceful drain + checkpoint). The parent
//     reopens each directory offline and verifies every stamped block the
//     node's persisted manifest says it owns — including the migrated
//     shard's blocks, now in B's directory, and post-migration overwrites.
//
// Run with: go run ./examples/cluster
package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"palermo"
	"palermo/internal/cluster"
)

const (
	childEnv = "PALERMO_CLUSTER_NODE" // "addr;dir;manifestPath"
	blocks   = 1 << 12
	shards   = 4
	stamped  = 64
)

func storeCfg(dir string) palermo.ShardedStoreConfig {
	return palermo.ShardedStoreConfig{
		// Blocks/Shards stay zero: a cluster node adopts the manifest's
		// geometry, so the numbers live in exactly one place.
		Backend:     palermo.BackendWAL,
		Dir:         dir,
		GroupCommit: 1,
	}
}

// payload is the deterministic stamp for (generation, id).
func payload(gen, id uint64) []byte {
	b := make([]byte, palermo.BlockSize)
	for i := range b {
		b[i] = byte(gen*151 + id*11 + uint64(i))
	}
	return b
}

// nodeLife is the child process: one cluster node serving until SIGTERM.
func nodeLife(spec string) {
	parts := strings.SplitN(spec, ";", 3)
	addr, dir, manifestPath := parts[0], parts[1], parts[2]
	man, err := cluster.Load(manifestPath)
	check(err)
	node, err := palermo.NewClusterNode(palermo.ClusterNodeConfig{Addr: addr, Store: storeCfg(dir)}, man)
	check(err)
	srv, err := palermo.NewClusterServer(node, palermo.ServerConfig{})
	check(err)
	ln, err := net.Listen("tcp", addr)
	check(err)
	fmt.Printf("  node %s: serving shards %v (epoch %d)\n", addr, node.OwnedShards(), node.Epoch())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	select {
	case <-sigc:
	case err := <-serveDone:
		check(err)
	}
	owned := node.OwnedShards()
	check(srv.Close()) // drain in-flight requests first
	check(node.Close())
	fmt.Printf("  node %s: drained and checkpointed (owned %v)\n", addr, owned)
	os.Exit(0)
}

func main() {
	if spec := os.Getenv(childEnv); spec != "" {
		nodeLife(spec)
	}

	root, err := os.MkdirTemp("", "palermo-cluster-*")
	check(err)
	defer os.RemoveAll(root)

	// Two loopback addresses, then the manifest that splits the shard
	// space across them (shards 0,1 → A; 2,3 → B).
	addrs := []string{freeAddr(), freeAddr()}
	man, err := cluster.EvenSplit(blocks, shards, addrs)
	check(err)
	manifestPath := filepath.Join(root, "manifest.json")
	check(man.Save(manifestPath))
	fmt.Printf("manifest: %d blocks, %d shards, epoch %d\n", man.Blocks, man.Shards, man.Epoch)
	for _, addr := range man.Nodes() {
		fmt.Printf("  %s -> shards %v\n", addr, man.Owned(addr))
	}

	// Start both node processes and wait for their listeners.
	children := make([]*exec.Cmd, 2)
	for i, addr := range addrs {
		dir := filepath.Join(root, fmt.Sprintf("node-%d", i))
		child := exec.Command(os.Args[0])
		child.Env = append(os.Environ(), childEnv+"="+addr+";"+dir+";"+manifestPath)
		child.Stdout, child.Stderr = os.Stdout, os.Stderr
		check(child.Start())
		children[i] = child
	}
	for _, addr := range addrs {
		waitReady(addr)
	}

	// One cluster client: the stamp scatters across both nodes.
	cc, err := palermo.DialCluster(addrs, palermo.ClientConfig{})
	check(err)
	ids := make([]uint64, stamped)
	gen1 := make([][]byte, stamped)
	for i := range ids {
		ids[i] = uint64(i)
		gen1[i] = payload(1, uint64(i))
	}
	check(cc.WriteBatch(ids, gen1))
	got, err := cc.ReadBatch(ids)
	check(err)
	for i := range ids {
		if !bytes.Equal(got[i], gen1[i]) {
			fail("block %d diverged before migration", ids[i])
		}
	}
	fmt.Printf("stamped %d blocks across the cluster and read them back (epoch %d)\n", stamped, cc.Epoch())

	// Live migration: shard 0 moves A → B while the client keeps its
	// epoch-1 manifest. palermo-ctl migrate does exactly this dial.
	admin, err := palermo.Dial(addrs[0], palermo.ClientConfig{})
	check(err)
	check(admin.Migrate(0, addrs[1]))
	check(admin.Close())
	fmt.Printf("migrated shard 0: %s -> %s\n", addrs[0], addrs[1])

	// The stale client rides out the epoch bump transparently: rejected
	// frames executed nothing, so the retry after the manifest refetch
	// serves every op exactly once.
	got, err = cc.ReadBatch(ids)
	check(err)
	for i := range ids {
		if !bytes.Equal(got[i], gen1[i]) {
			fail("block %d diverged after migration", ids[i])
		}
	}
	// Overwrite the migrated shard's blocks post-migration: these land on
	// B and must survive its checkpointed shutdown.
	final := make(map[uint64][]byte, stamped)
	for _, id := range ids {
		final[id] = gen1[id]
	}
	for _, id := range ids {
		if id%shards == 0 {
			final[id] = payload(2, id)
			check(cc.Write(id, final[id]))
		}
	}
	fmt.Printf("re-read all blocks and overwrote the migrated shard's through the stale client (epoch now %d)\n", cc.Epoch())
	check(cc.Close())

	// Graceful stop: drain, checkpoint, persist node state.
	for _, child := range children {
		check(child.Process.Signal(syscall.SIGTERM))
	}
	for _, child := range children {
		check(child.Wait())
	}

	// Offline verification per node directory: each node's persisted
	// manifest names the shards its WAL holds — B's now include shard 0.
	for i := range addrs {
		dir := filepath.Join(root, fmt.Sprintf("node-%d", i))
		verifyNode(dir, final)
	}
	fmt.Println("cluster: OK")
}

// verifyNode reopens one node directory without a listener and checks
// every stamped block its persisted manifest assigns to it.
func verifyNode(dir string, want map[uint64][]byte) {
	ns, err := cluster.LoadNodeState(dir)
	check(err)
	if ns == nil {
		fail("%s has no persisted node state", dir)
	}
	node, err := palermo.NewClusterNode(palermo.ClusterNodeConfig{Addr: ns.Addr, Store: storeCfg(dir)}, ns.Manifest)
	check(err)
	checked := 0
	for id, exp := range want {
		if !node.Owns(id) {
			continue
		}
		got, err := node.Read(id)
		check(err)
		if !bytes.Equal(got, exp) {
			fail("node %s: block %d diverged after restart", ns.Addr, id)
		}
		checked++
	}
	check(node.Close())
	fmt.Printf("verified %d stamped blocks in %s (node %s, epoch %d, shards %v)\n",
		checked, filepath.Base(dir), ns.Addr, ns.Manifest.Epoch, ns.Manifest.Owned(ns.Addr))
}

// freeAddr reserves a loopback port by binding and releasing it.
func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	addr := ln.Addr().String()
	check(ln.Close())
	return addr
}

// waitReady polls until the node's listener accepts a handshake.
func waitReady(addr string) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl, err := palermo.Dial(addr, palermo.ClientConfig{DialTimeout: 250 * time.Millisecond})
		if err == nil {
			check(cl.Close())
			return
		}
		if time.Now().After(deadline) {
			fail("node %s never became ready: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cluster: "+format+"\n", args...)
	os.Exit(1)
}
