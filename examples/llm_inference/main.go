// LLM inference with an oblivious token-embedding table — the paper's §II-A
// motivating scenario: a client runs language-model inference with the
// token feature table in untrusted outsourced memory. Without ORAM, the
// memory bus leaks which embedding rows (tokens) are fetched, letting the
// attacker reconstruct prompts; with ORAM, every lookup is a uniformly
// random tree path.
//
// The example compares the cost of that protection across designs and shows
// why Palermo+Prefetch suits embedding rows (48 sequential cache lines per
// token) particularly well.
//
// Run: go run ./examples/llm_inference
package main

import (
	"fmt"
	"log"

	"palermo"
)

func main() {
	opts := palermo.Options{Requests: 600}

	fmt.Println("Protecting a GPT-2 token embedding table (48 lines/row, Zipfian token mix)")
	fmt.Println()
	fmt.Printf("%-12s %14s %12s %10s\n", "design", "Mmiss/s", "speedup", "DRAM BW")

	base, err := palermo.Run(palermo.ProtoPathORAM, "llm", opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, proto := range []palermo.Protocol{
		palermo.ProtoPathORAM, palermo.ProtoRingORAM,
		palermo.ProtoPalermo, palermo.ProtoPalermoPF,
	} {
		r := base
		if proto != palermo.ProtoPathORAM {
			r, err = palermo.Run(proto, "llm", opts)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-12s %14.2f %11.2fx %9.1f%%\n",
			proto, r.MissesPerSecond()/1e6,
			r.Throughput()/base.Throughput(), r.Mem.BandwidthUtil*100)
	}

	// Prefetch sensitivity: the best length tracks the embedding row size
	// (Fig 13's observation).
	fmt.Println("\nPalermo prefetch-length sweep on the embedding trace:")
	for _, pf := range []int{1, 2, 4, 8} {
		o := opts
		o.Prefetch = pf
		r, err := palermo.Run(palermo.ProtoPalermoPF, "llm", o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pf=%-2d  %6.2fx over PathORAM  (LLC filtered %d of %d token-line misses)\n",
			pf, r.Throughput()/base.Throughput(), r.LLCHits, r.ServedLines)
	}
	fmt.Println("\nEvery design above hides which tokens were looked up; they differ only in cost.")
}
