// Remote client: the oblivious store served over TCP.
//
// This example runs the whole network stack in one process so it needs no
// orchestration: a ShardedStore goes behind palermo.Server on a loopback
// socket, a palermo.Client dials it, and the same operations an in-process
// caller would issue — single reads/writes, an atomic batch with duplicate
// ids, concurrent small reads that the client coalesces into shared batch
// frames — travel the wire protocol instead of a function call. At the
// end it prints the server-side stats next to the client's frame counters,
// so the automatic-batching win is visible.
//
// In a real deployment the server half is cmd/palermo-server and the
// client half is this file minus the server setup (dial the server's
// address instead of the loopback listener).
//
// Run: go run ./examples/remote_client
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sync"

	"palermo"
)

const (
	blocks  = 1 << 14
	shards  = 2
	readers = 32
)

func main() {
	// Server half (cmd/palermo-server in a real deployment).
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{
		Blocks: blocks,
		Shards: shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := palermo.NewServer(st, palermo.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	fmt.Printf("serving %d blocks across %d shards on %s\n", blocks, shards, ln.Addr())

	// Client half: dial, then use it exactly like a ShardedStore.
	cl, err := palermo.Dial(ln.Addr().String(), palermo.ClientConfig{
		MaxInFlight: 4, // small window => concurrent reads visibly coalesce
		BatchWindow: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handshake: capacity %d blocks, %d shards\n", cl.Blocks(), cl.Shards())

	secret := make([]byte, palermo.BlockSize)
	copy(secret, "attack at dawn")
	if err := cl.Write(42, secret); err != nil {
		log.Fatal(err)
	}
	got, err := cl.Read(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip over the wire: %q\n", string(bytes.TrimRight(got, "\x00")))

	// An explicit batch is one frame and keeps its atomic dedup semantics:
	// the duplicate id is served by a single ORAM access server-side.
	batch, err := cl.ReadBatch([]uint64{42, 7, 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of 3 (one duplicate): identical payloads %v\n",
		bytes.Equal(batch[0], batch[2]))

	// Concurrent single reads share coalesced ReadBatch frames.
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.Read(uint64(i % 8)); err != nil {
				log.Print(err)
			}
		}(i)
	}
	wg.Wait()

	stats, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	ns := cl.NetStats()
	fmt.Printf("server served %d reads, %d writes (%d dedup fan-outs)\n",
		stats.Reads, stats.Writes, stats.DedupHits)
	fmt.Printf("client sent %d frames for %d ops (%d reads rode shared batch frames)\n",
		ns.FramesSent, ns.Ops, ns.MergedOps)

	// Teardown order matters: drain the network layer, then the store.
	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	<-serveDone
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and closed")
}
