// Example durable_store demonstrates the WAL block-state backend end to
// end: a store that survives a clean restart bit-exactly and a hard kill
// with bounded loss.
//
// The demo runs three lives over one directory:
//
//  1. A child process (this binary re-exec'd) opens a WAL-backed store
//     with synchronous group commit, writes a batch of blocks, and exits
//     WITHOUT calling Close — simulating a kill -9. No checkpoint is
//     written; everything must come back from the log tail.
//  2. The parent reopens the directory: recovery replays the tail through
//     the ORAM engine and every fsynced write reads back byte-identical.
//     It then writes more blocks and Closes cleanly (checkpoint).
//  3. A final open restores from the checkpoint alone (empty tail) and
//     verifies both generations of writes plus the recovered traffic
//     counters.
//
// Run with: go run ./examples/durable_store
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"

	"palermo"
)

const (
	childEnv = "PALERMO_DURABLE_STORE_LIFE1"
	blocks   = 1 << 12
	writes   = 96
)

func cfg(dir string) palermo.ShardedStoreConfig {
	return palermo.ShardedStoreConfig{
		Blocks:  blocks,
		Shards:  2,
		Backend: palermo.BackendWAL,
		Dir:     dir,
		// GroupCommit 1 = every write fsyncs before returning, so the
		// kill in life 1 loses nothing. Raise it and the kill may cost
		// up to GroupCommit-1 trailing writes per shard — never more.
		GroupCommit: 1,
	}
}

func payload(gen, id uint64) []byte {
	b := make([]byte, palermo.BlockSize)
	for i := range b {
		b[i] = byte(gen*131 + id*7 + uint64(i))
	}
	return b
}

// life1 is the child: write, then die without Close.
func life1(dir string) {
	st, err := palermo.NewShardedStore(cfg(dir))
	check(err)
	for id := uint64(0); id < writes; id++ {
		check(st.Write(id, payload(1, id)))
	}
	// No Close: the deferred checkpoint never happens. The un-buffered
	// group commit already pushed every record to stable storage.
	os.Exit(0)
}

func main() {
	dir := os.Getenv(childEnv)
	if dir != "" {
		life1(dir)
	}

	dir, err := os.MkdirTemp("", "palermo-durable-*")
	check(err)
	defer os.RemoveAll(dir)

	fmt.Println("life 1: child writes", writes, "blocks, then dies without Close (kill -9)")
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(), childEnv+"="+dir)
	child.Stdout, child.Stderr = os.Stdout, os.Stderr
	check(child.Run())

	fmt.Println("life 2: reopen — recovery replays the WAL tail through the ORAM engine")
	st, err := palermo.NewShardedStore(cfg(dir))
	check(err)
	rep := st.Traffic()
	fmt.Printf("  recovered %d writes (DRAM traffic regenerated: %d line reads)\n", rep.Writes, rep.DRAMReads)
	for id := uint64(0); id < writes; id++ {
		got, err := st.Read(id)
		check(err)
		if !bytes.Equal(got, payload(1, id)) {
			fail("life-1 block %d diverged after crash recovery", id)
		}
	}
	fmt.Println("  all life-1 blocks read back byte-identical")
	for id := uint64(writes); id < 2*writes; id++ {
		check(st.Write(id, payload(2, id)))
	}
	check(st.Close()) // clean shutdown: flush + sealed metadata checkpoint
	fmt.Println("  wrote", writes, "more blocks and closed cleanly (checkpoint)")

	fmt.Println("life 3: reopen — exact restore from the checkpoint, no tail replay")
	st, err = palermo.NewShardedStore(cfg(dir))
	check(err)
	rep2 := st.Traffic()
	for id := uint64(0); id < 2*writes; id++ {
		gen := uint64(1)
		if id >= writes {
			gen = 2
		}
		got, err := st.Read(id)
		check(err)
		if !bytes.Equal(got, payload(gen, id)) {
			fail("block %d diverged after clean restart", id)
		}
	}
	check(st.Close())
	fmt.Printf("  all %d blocks verified; counters survived both restarts (%d reads, %d writes, stash peak %d)\n",
		2*writes, rep2.Reads, rep2.Writes, rep2.StashPeak)
	fmt.Println("durable_store: OK")
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "durable_store: "+format+"\n", args...)
	os.Exit(1)
}
