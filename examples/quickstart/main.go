// Quickstart: an oblivious key-value store on the Palermo ORAM engine.
//
// This example exercises the functional layer directly: values are sealed
// with AES-CTR, stored through the Palermo-variant RingORAM engine (real
// tree + stash + recursive position maps), and read back obliviously —
// every access touches one uniformly random tree path regardless of which
// key is requested. It then runs the timing simulation to show what the
// same accesses cost on the modeled hardware.
//
// Run: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"palermo"
	"palermo/internal/crypt"
	"palermo/internal/oram"
)

func main() {
	// A 256 MB protected space (2^22 cache lines) with Palermo's protocol
	// parameters. The tree is lazily materialized, so construction is cheap.
	cfg := oram.PalermoRingConfig()
	cfg.NLines = 1 << 22
	engine, err := oram.NewRing(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sealer, err := crypt.NewSealer([]byte("an example 16B k"))
	if err != nil {
		log.Fatal(err)
	}

	// Store a few secrets. Each Access returns the exact DRAM traffic plan
	// the hardware would replay — note every plan has the same shape.
	secrets := map[uint64]string{
		1000: "the merger closes friday",
		2000: "prompt: draft my resignation",
		3000: "patient id 77421 biopsy",
	}
	for pa, msg := range secrets {
		var block [crypt.BlockBytes]byte
		copy(block[:], msg)
		sealed, epoch, err := sealer.Seal(pa, block[:])
		if err != nil {
			log.Fatal(err)
		}
		// The simulator carries a compact payload; real deployments move
		// the sealed 64-byte block. We store a digest to verify round trip.
		plan := engine.Access(pa, true, digest(sealed)|epoch<<48)
		fmt.Printf("write PA %d: %3d DRAM reads, %3d writes, leaf %d remapped\n",
			pa, plan.Reads(), plan.Writes(), plan.DataLeaf)
	}

	// Read them back. The access pattern reveals nothing: same traffic
	// shape, fresh random path every time, even for repeated keys.
	for pa := range secrets {
		plan := engine.Access(pa, false, 0)
		fmt.Printf("read  PA %d: value intact=%v, exposed leaf %d\n",
			pa, plan.Val != 0, plan.DataLeaf)
	}

	// The same requests under the full timing model: Palermo vs RingORAM.
	opts := palermo.Options{Lines: 1 << 22, Requests: 400}
	ring, err := palermo.Run(palermo.ProtoRingORAM, "redis", opts)
	if err != nil {
		log.Fatal(err)
	}
	pal, err := palermo.Run(palermo.ProtoPalermo, "redis", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiming (redis-style keys): RingORAM %.2fM miss/s -> Palermo %.2fM miss/s (%.1fx)\n",
		ring.MissesPerSecond()/1e6, pal.MissesPerSecond()/1e6,
		pal.Throughput()/ring.Throughput())
}

func digest(b []byte) uint64 {
	var d uint64
	for len(b) >= 8 {
		d ^= binary.LittleEndian.Uint64(b)
		b = b[8:]
	}
	return d & (1<<48 - 1)
}
