// Cache-hierarchy front end: the paper's methodology simulates a full
// processor (Sniper) whose L1/L2/L3 hierarchy turns program references into
// the LLC-miss trace the ORAM controller serves. This example runs a
// program-level reference stream through the Table III hierarchy
// (internal/cache), shows how the hierarchy filters it, and feeds the
// surviving misses to Palermo.
//
// Run: go run ./examples/cache_frontend
package main

import (
	"fmt"
	"log"

	"palermo/internal/cache"
	"palermo/internal/core"
	"palermo/internal/ctrl"
	"palermo/internal/dram"
	"palermo/internal/oram"
	"palermo/internal/rng"
	"palermo/internal/sim"
)

func main() {
	hier, err := cache.NewHierarchy(cache.Table3Hierarchy())
	if err != nil {
		log.Fatal(err)
	}

	// Program references: a pointer-chasing loop over a 64 MB structure
	// with a hot 512 KB index that the caches absorb.
	const lines = 1 << 20 // 64 MB protected region
	r := rng.New(7)
	refs := func() uint64 {
		if r.Float64() < 0.6 {
			return r.Uint64n(8192) // hot index: fits in L3
		}
		return r.Uint64n(lines) // cold pointer chase
	}

	// Warm the hierarchy, then measure its filtering.
	for i := 0; i < 200000; i++ {
		hier.Access(refs())
	}
	fmt.Printf("cache hierarchy: %d refs, %.1f%% reach memory (L3 miss rate)\n",
		hier.Refs, hier.MissRate()*100)
	for _, c := range hier.Levels() {
		fmt.Printf("  %-3s %4d KB %2d-way: hit rate %5.1f%%\n",
			c.Level().Name, c.Level().Capacity>>10, c.Level().Ways, c.HitRate()*100)
	}

	// Serve the surviving misses with the Palermo controller.
	cfg := oram.PalermoRingConfig()
	cfg.NLines = lines
	engine, err := oram.NewRing(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	src := ctrl.FuncSource(func() (uint64, bool) {
		for {
			line := refs()
			if hier.Access(line) {
				return line, false
			}
		}
	})
	res := core.Mesh{Name: "palermo", Columns: 8}.Run(&eng, mem, engine, src,
		ctrl.RunConfig{Requests: 800, Warmup: 400})

	fmt.Printf("\nORAM service of the miss stream:\n  %v\n", res)
	fmt.Printf("  every miss cost %.0f DRAM accesses on average (the price of obliviousness)\n",
		float64(res.PlanReads+res.PlanWrites)/float64(res.Requests))
	fmt.Printf("  stash peak %v (budget %d), overflows %v\n",
		res.StashMax, oram.HardwareStashTags, res.StashOver)
}
