package palermo

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestFig4CSV(t *testing.T) {
	r := Fig4Result{
		Lengths:    []int{1, 2},
		PrSpeedup:  []float64{1, 2},
		PrDummy:    []float64{0, 0.5},
		FatSpeedup: []float64{1, 2.1},
		FatDummy:   []float64{0, 0.2},
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 || recs[0][0] != "pf" {
		t.Fatalf("unexpected csv: %v", recs)
	}
	if recs[2][2] != "0.5" {
		t.Fatalf("dummy fraction cell = %q", recs[2][2])
	}
}

func TestFig10CSV(t *testing.T) {
	r := Fig10Result{
		Workloads: []string{"a", "b"},
		Protocols: []Protocol{ProtoPathORAM, ProtoPalermo},
		Speedup:   [][]float64{{1, 1}, {2, 2.5}},
		GMean:     []float64{1, 2.23},
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	// header + 2 protocols x (2 workloads + gmean).
	if len(recs) != 1+2*3 {
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[6][0] != "Palermo" || recs[6][1] != "gmean" {
		t.Fatalf("gmean row = %v", recs[6])
	}
}

func TestRunResultCSVRow(t *testing.T) {
	r, err := Run(ProtoPalermo, "rand", Options{Lines: 1 << 22, Requests: 200})
	if err != nil {
		t.Fatal(err)
	}
	row := r.CSVRow()
	if len(row) != len(ResultCSVHeader) {
		t.Fatalf("row width %d vs header %d", len(row), len(ResultCSVHeader))
	}
	if row[0] != "Palermo" || row[1] != "rand" {
		t.Fatalf("identity cells wrong: %v", row[:2])
	}
	for i, cell := range row {
		if strings.TrimSpace(cell) == "" {
			t.Fatalf("empty cell %d (%s)", i, ResultCSVHeader[i])
		}
	}
}

func TestAllResultCSVsWellFormed(t *testing.T) {
	o := Options{Lines: 1 << 22, Requests: 200}
	var buf bytes.Buffer

	f3, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f3.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf)

	f11, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f11.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if recs := parseCSV(t, &buf); len(recs) != 5 {
		t.Fatalf("fig11 rows = %d", len(recs))
	}

	f12, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f12.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf)

	f14a := Fig14aResult{ZSA: [][3]int{{4, 5, 3}}, Speedup: []float64{1}, Stash: []int{20}}
	buf.Reset()
	if err := f14a.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	f14b := Fig14bResult{Columns: []int{1}, Speedup: []float64{1}, BW: []float64{0.2}}
	buf.Reset()
	if err := f14b.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	f13 := Fig13Result{Workloads: []string{"a"}, Lengths: []int{1}, Speedup: [][]float64{{1}}}
	buf.Reset()
	if err := f13.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	f9 := Fig9Result{Rows: []Fig9Row{{Workload: "a"}}}
	buf.Reset()
	if err := f9.CSV(&buf); err != nil {
		t.Fatal(err)
	}
}
