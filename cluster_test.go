package palermo

// Cluster-layer tests: the multi-node serving path (ClusterClient →
// placement routing → per-node wire → ClusterNode) must be
// indistinguishable from one in-process ShardedStore — byte for byte,
// count for count, and leaf for leaf — including across a live shard
// migration, whose exact-state handoff makes the migrated shard's
// protocol history the concatenation of the source's trace prefix and
// the target's suffix. Run under -race these are also the concurrency
// audit of the scatter/gather client and the migration barrier.

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"palermo/internal/cluster"
)

// testClusterNode is one running node of a test cluster.
type testClusterNode struct {
	addr string
	node *ClusterNode
	srv  *Server
	done chan error
}

func (tn *testClusterNode) stop(t *testing.T) {
	t.Helper()
	if err := tn.srv.Close(); err != nil {
		t.Fatalf("node %s: server close: %v", tn.addr, err)
	}
	if err := <-tn.done; err != ErrServerClosed {
		t.Fatalf("node %s: serve: %v", tn.addr, err)
	}
	if err := tn.node.Close(); err != nil {
		t.Fatalf("node %s: node close: %v", tn.addr, err)
	}
}

// startClusterPair boots a two-node cluster over loopback: listeners are
// bound first so their concrete addresses can be written into the
// manifest, then each node loads the manifest and serves its ranges.
func startClusterPair(t *testing.T, cfg ShardedStoreConfig, trace bool) (*testClusterNode, *testClusterNode) {
	t.Helper()
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	man, err := cluster.EvenSplit(cfg.Blocks, uint32(cfg.Shards), addrs)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*testClusterNode, 2)
	for i := range nodes {
		node, err := NewClusterNode(ClusterNodeConfig{Addr: addrs[i], Store: cfg}, man)
		if err != nil {
			t.Fatalf("node %s: %v", addrs[i], err)
		}
		if trace {
			node.EnableTraces()
		}
		srv, err := NewClusterServer(node, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func(srv *Server, ln net.Listener) { done <- srv.Serve(ln) }(srv, lns[i])
		nodes[i] = &testClusterNode{addr: addrs[i], node: node, srv: srv, done: done}
	}
	return nodes[0], nodes[1]
}

// clusterLeafTraces concatenates both nodes' traces per shard, source
// node first: for a shard migrated a→b, a's retired trace is the prefix
// of the shard's protocol history and b's live trace the suffix.
func clusterLeafTraces(a, b *testClusterNode) map[int][]uint64 {
	out := make(map[int][]uint64)
	for _, traces := range [][]LeafTrace{a.node.LeafTraces(), b.node.LeafTraces()} {
		for _, tr := range traces {
			if len(tr.Leaves) > 0 {
				out[tr.Shard] = append(out[tr.Shard], tr.Leaves...)
			}
		}
	}
	return out
}

// TestClusterDifferentialEquivalence runs one recorded op sequence
// against an in-process ShardedStore and against a two-node cluster
// behind ClusterClient, and demands the paths be indistinguishable:
// byte-identical read payloads, identical service op counts, identical
// engine traffic, and element-wise identical per-shard leaf traces. The
// migration subtest additionally moves shard 0 to the other node midway
// through the sequence — the client rides out the epoch bump
// transparently, and the migrated shard's concatenated source+target
// trace must still equal the single-store reference, which is the
// end-to-end proof that migration hands over exact protocol state.
func TestClusterDifferentialEquivalence(t *testing.T) {
	const blocks = 1 << 12
	const shards = 3
	cfg := ShardedStoreConfig{Blocks: blocks, Shards: shards, Seed: 77}
	ops := recordNetOps(blocks, 400)

	// In-process reference run.
	local, err := NewShardedStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local.EnableTraces()
	wantPayloads := playNetOps(t, local, ops)
	wantStats := local.Stats()
	wantTraffic := local.Traffic()
	wantTraces := local.LeafTraces()
	if err := local.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, nodeCfg ShardedStoreConfig, migrateAt int) {
		a, b := startClusterPair(t, nodeCfg, true)
		defer b.stop(t)
		defer a.stop(t)
		cc, err := DialCluster([]string{a.addr, b.addr}, ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer cc.Close()
		if cc.Blocks() != blocks || cc.Shards() != shards || cc.Epoch() != 1 {
			t.Fatalf("cluster geometry: %d blocks, %d shards, epoch %d", cc.Blocks(), cc.Shards(), cc.Epoch())
		}
		var gotPayloads [][]byte
		if migrateAt < 0 {
			gotPayloads = playNetOps(t, cc, ops)
		} else {
			gotPayloads = playNetOps(t, cc, ops[:migrateAt])
			// Live migration mid-sequence: shard 0 moves a → b while the
			// client still routes by the epoch-1 manifest.
			if err := a.node.Migrate(0, b.addr); err != nil {
				t.Fatalf("migrate shard 0: %v", err)
			}
			if got := a.node.Epoch(); got != 2 {
				t.Fatalf("source epoch after migration = %d, want 2", got)
			}
			gotPayloads = append(gotPayloads, playNetOpsFrom(t, cc, ops[migrateAt:], migrateAt)...)
			if got := cc.Epoch(); got != 2 {
				t.Fatalf("client epoch after riding out the migration = %d, want 2", got)
			}
		}
		gotStats, gotTraffic, err := cc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}

		if len(gotPayloads) != len(wantPayloads) {
			t.Fatalf("cluster path returned %d read payloads, in-process %d", len(gotPayloads), len(wantPayloads))
		}
		for i := range wantPayloads {
			if !bytes.Equal(gotPayloads[i], wantPayloads[i]) {
				t.Fatalf("read payload %d diverged between in-process and cluster paths", i)
			}
		}
		if gotStats.Reads != wantStats.Reads || gotStats.Writes != wantStats.Writes ||
			gotStats.DedupHits != wantStats.DedupHits {
			t.Fatalf("stats diverged: cluster %d/%d/%d, in-process %d/%d/%d",
				gotStats.Reads, gotStats.Writes, gotStats.DedupHits,
				wantStats.Reads, wantStats.Writes, wantStats.DedupHits)
		}
		if gotTraffic.Reads != wantTraffic.Reads || gotTraffic.Writes != wantTraffic.Writes ||
			gotTraffic.DRAMReads != wantTraffic.DRAMReads || gotTraffic.DRAMWrites != wantTraffic.DRAMWrites {
			t.Fatalf("engine traffic diverged: cluster %+v, in-process %+v", gotTraffic, wantTraffic)
		}
		gotTraces := clusterLeafTraces(a, b)
		for _, want := range wantTraces {
			got := gotTraces[want.Shard]
			if len(want.Leaves) == 0 {
				t.Fatalf("shard %d served nothing in the reference run", want.Shard)
			}
			if len(got) != len(want.Leaves) {
				t.Fatalf("shard %d: cluster exposed %d leaves, in-process %d", want.Shard, len(got), len(want.Leaves))
			}
			for j := range want.Leaves {
				if got[j] != want.Leaves[j] {
					t.Fatalf("shard %d: leaf %d diverged (%d != %d)", want.Shard, j, got[j], want.Leaves[j])
				}
			}
		}
	}

	t.Run("static", func(t *testing.T) { run(t, cfg, -1) })
	t.Run("migration", func(t *testing.T) { run(t, cfg, 200) })

	// Deep prefetch on both nodes, migration mid-sequence: the multi-line
	// planner (look-ahead across queued batches plus posmap-group sibling
	// announces) is serving-path-only, so the cluster must still match the
	// plain in-process reference leaf for leaf — and the migration barrier
	// must neither leak announced prefetch window slots nor wedge on
	// speculative lines parked in the transfer window.
	deep := cfg
	deep.PipelineDepth = 4
	deep.Prefetch = true
	deep.PrefetchDepth = 4
	deep.PosmapPrefetch = true
	t.Run("deep-prefetch-migration", func(t *testing.T) { run(t, deep, 200) })
}

// TestClusterWrongEpochReroute pins the staleness contract: after a
// migration, a client still routing by the old manifest gets its frame
// rejected whole with a wrong-epoch status (nothing executed), while the
// cluster client refetches and re-routes transparently with every
// operation executing exactly once — counts prove no loss or duplication.
// TestClusterPartialShed: one node drowning (an admission deadline no
// queued request can meet) while its peer serves normally. Ops routed to
// the shedding node must come back ErrRetry through the scatter/gather
// path — a shed is a retry-later signal, not a reroute, so the client
// must NOT burn its wrong-epoch retry on it — while ops confined to the
// healthy node succeed, and the cluster-wide snapshot aggregates the
// shed count.
func TestClusterPartialShed(t *testing.T) {
	const blocks = 1 << 12
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	man, err := cluster.EvenSplit(blocks, 2, addrs)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 sheds everything; node 1 is healthy. Same Seed/Key on both,
	// as the cluster contract requires.
	cfgs := []ShardedStoreConfig{
		{Blocks: blocks, Shards: 2, Seed: 4, AdmissionDeadline: 1},
		{Blocks: blocks, Shards: 2, Seed: 4},
	}
	nodes := make([]*testClusterNode, 2)
	for i := range nodes {
		node, err := NewClusterNode(ClusterNodeConfig{Addr: addrs[i], Store: cfgs[i]}, man)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewClusterServer(node, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func(srv *Server, ln net.Listener) { done <- srv.Serve(ln) }(srv, lns[i])
		nodes[i] = &testClusterNode{addr: addrs[i], node: node, srv: srv, done: done}
	}
	defer nodes[1].stop(t)
	defer nodes[0].stop(t)
	cc, err := DialCluster(addrs, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Striped placement: even ids live on node 0 (shedding), odd on node 1.
	if err := cc.Write(0, block(0x11)); !errors.Is(err, ErrRetry) {
		t.Fatalf("write to shedding node = %v, want ErrRetry", err)
	}
	if err := cc.Write(1, block(0x22)); err != nil {
		t.Fatalf("write to healthy node failed: %v", err)
	}
	// A batch spanning both nodes: the shed partition poisons the gather.
	if _, err := cc.ReadBatch([]uint64{0, 1}); !errors.Is(err, ErrRetry) {
		t.Fatalf("spanning batch = %v, want ErrRetry", err)
	}
	// Confined to the healthy node, the batch both succeeds and returns
	// the committed payload — partial sheds elsewhere corrupt nothing.
	got, err := cc.ReadBatch([]uint64{1, 3})
	if err != nil {
		t.Fatalf("healthy-only batch: %v", err)
	}
	if !bytes.Equal(got[0], block(0x22)) {
		t.Fatal("healthy partition returned wrong payload after partial shed")
	}
	// The cluster snapshot carries the shedding node's count.
	st, _, err := cc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sheds < 2 {
		t.Fatalf("cluster snapshot aggregated %d sheds, want >= 2", st.Sheds)
	}
}

func TestClusterWrongEpochReroute(t *testing.T) {
	const blocks = 1 << 12
	const shards = 3
	cfg := ShardedStoreConfig{Blocks: blocks, Shards: shards, Seed: 9}
	a, b := startClusterPair(t, cfg, false)
	defer b.stop(t)
	defer a.stop(t)

	// A cluster client dialed before the migration (stale manifest) and a
	// plain client pinned to the source node.
	cc, err := DialCluster([]string{a.addr, b.addr}, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	direct, err := Dial(a.addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	// Shard-0 ids (id mod 3 == 0), written pre-migration through the
	// cluster client: 4 writes.
	ids := []uint64{0, 3, 6, 9}
	for i, id := range ids {
		if err := cc.Write(id, block(byte(0xA0+i))); err != nil {
			t.Fatalf("write %d: %v", id, err)
		}
	}

	// A frame for a shard the node does not own is rejected typed, both
	// before and after the migration flips ownership.
	directB, err := Dial(b.addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer directB.Close()
	if _, err := directB.Read(0); !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("read of unowned shard on target = %v, want ErrWrongEpoch", err)
	}

	if err := a.node.Migrate(0, b.addr); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// The source now rejects shard 0 — whole frame, nothing executed.
	if _, err := direct.Read(0); !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("stale read on source = %v, want ErrWrongEpoch", err)
	}
	// A batch mixing a migrated and a kept shard through the stale-manifest
	// cluster client: the rejected group re-routes, the kept group does not
	// re-execute.
	got, err := cc.ReadBatch(ids)
	if err != nil {
		t.Fatalf("post-migration batch through stale client: %v", err)
	}
	for i, id := range ids {
		if want := block(byte(0xA0 + i)); !bytes.Equal(got[i], want) {
			t.Fatalf("block %d diverged after migration", id)
		}
	}
	if got := cc.Epoch(); got != 2 {
		t.Fatalf("client epoch after re-route = %d, want 2", got)
	}

	// Exactly-once accounting: 4 writes + 4 reads total across the
	// cluster, the wrong-epoch rejections and retries adding nothing.
	ss, _, err := cc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Writes != uint64(len(ids)) || ss.Reads != uint64(len(ids)) {
		t.Fatalf("cluster served %d writes / %d reads, want %d / %d (lost or duplicated ops)",
			ss.Writes, ss.Reads, len(ids), len(ids))
	}
}

// TestClientRedialRejectsEpochBump extends the redial-handshake
// regression (TestClientRedialRefreshesHandshake) to the cluster's
// geometry epoch: a plain Client pins the epoch at Dial, so a redial
// against a node whose placement has since moved must fail loudly as a
// geometry change instead of silently adapting to the new placement.
func TestClientRedialRejectsEpochBump(t *testing.T) {
	const blocks = 1 << 12
	cfg := ShardedStoreConfig{Blocks: blocks, Shards: 3, Seed: 5}
	a, b := startClusterPair(t, cfg, false)
	defer b.stop(t)

	cl, err := Dial(a.addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Epoch() != 1 {
		t.Fatalf("handshake epoch = %d, want 1", cl.Epoch())
	}
	// Shard 1 stays on node a across the migration; id 1 lives there.
	if err := cl.Write(1, block(0xEE)); err != nil {
		t.Fatal(err)
	}
	if err := a.node.Migrate(0, b.addr); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// The live connection keeps serving still-owned shards (ownership is
	// checked per frame, not per connection).
	if _, err := cl.Read(1); err != nil {
		t.Fatalf("read of kept shard after epoch bump: %v", err)
	}

	// Bounce the node's listener: the client's next op redials and repeats
	// the handshake, which now reports epoch 2 against the pinned 1.
	if err := a.srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-a.done; err != ErrServerClosed {
		t.Fatal(err)
	}
	cc := cl.slots[0].cur.Load()
	select {
	case <-cc.readerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("client never noticed the server going away")
	}
	ln, err := net.Listen("tcp", a.addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewClusterServer(a.node, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ln) }()
	defer func() {
		srv2.Close()
		<-done2
		a.node.Close()
	}()
	_, err = cl.Read(1)
	if err == nil || !strings.Contains(err.Error(), "geometry changed") || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("epoch bump not rejected on redial: %v", err)
	}
}
