module palermo

go 1.24
