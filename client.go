package palermo

// Client is the remote form of ShardedStore: the same
// Read/Write/ReadBatch/WriteBatch/Stats surface, executed over TCP against
// a palermo.Server (or cmd/palermo-server) speaking the internal/wire
// protocol.
//
//	cl, _ := palermo.Dial("127.0.0.1:7070", palermo.ClientConfig{})
//	defer cl.Close()
//	cl.Write(42, payload)
//	data, _ := cl.Read(42)
//
// Concurrency model: a Client is safe for any number of goroutines. Each
// pooled connection runs a mux goroutine (serializes request frames) and a
// reader goroutine (resolves responses by request id), so one connection
// carries many in-flight operations. Concurrent single-block operations
// that arrive inside one mux drain window are coalesced into
// ReadBatch/WriteBatch frames automatically — closed-loop clients get
// frame batching without changing their call sites. Explicit
// ReadBatch/WriteBatch calls are forwarded as single frames, never split
// or merged, preserving their atomic dedup semantics.
//
// Every operation has a *Ctx variant; cancelling the context abandons the
// wait, and the eventual response is discarded. Operations against a
// closed client or a draining server return an error satisfying
// errors.Is(err, palermo.ErrClosed).
//
// A connection that breaks (server restart, idle-timeout reap, network
// fault) fails its in-flight operations, and the next operation routed to
// its pool slot re-dials transparently — a long-lived client survives
// server idle disconnects. The redial repeats the Stats handshake, so a
// restarted server's batch limit takes effect and a geometry change (a
// different store at the same address) fails loudly instead of being
// silently adapted to. Close waits for outstanding responses;
// ClientConfig.CloseTimeout bounds that wait against a stalled peer.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"palermo/internal/wire"
)

// ClientConfig tunes a client. The zero value uses the defaults.
type ClientConfig struct {
	// Conns is the connection-pool size; operations round-robin across it.
	// Default 1.
	Conns int
	// MaxInFlight bounds each connection's outstanding request frames;
	// further submissions block (the client half of the server's window).
	// Default 64.
	MaxInFlight int
	// BatchWindow caps how many concurrent single-block operations one mux
	// drain coalesces into a ReadBatch/WriteBatch frame. 1 disables
	// coalescing. Default 32.
	BatchWindow int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// CloseTimeout bounds how long Close waits for outstanding responses
	// before force-closing the sockets and failing the pending operations
	// (a stalled server or network otherwise wedges Close forever).
	// 0 (the default) waits indefinitely.
	CloseTimeout time.Duration
}

func (c *ClientConfig) defaults() {
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 32
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
}

func (c ClientConfig) validate() error {
	if c.Conns < 0 || c.MaxInFlight < 0 || c.BatchWindow < 0 {
		return fmt.Errorf("palermo: Conns/MaxInFlight/BatchWindow must be >= 0")
	}
	if c.BatchWindow > wire.MaxOps {
		return fmt.Errorf("palermo: BatchWindow %d exceeds the wire format's %d-op frame limit", c.BatchWindow, wire.MaxOps)
	}
	if c.DialTimeout < 0 {
		return fmt.Errorf("palermo: DialTimeout must be >= 0")
	}
	if c.CloseTimeout < 0 {
		return fmt.Errorf("palermo: CloseTimeout must be >= 0")
	}
	return nil
}

// ClientNetStats counts the client side of the wire: how many request
// frames were sent and how many operations they carried. MergedOps is the
// automatic-batching win — single-block calls that shared a coalesced
// batch frame instead of paying their own round trip.
type ClientNetStats struct {
	FramesSent uint64
	Ops        uint64
	MergedOps  uint64
}

// Client is a remote handle on a served store.
type Client struct {
	cfg    ClientConfig
	addr   string
	slots  []*connSlot
	next   atomic.Uint64
	blocks uint64
	shards int
	epoch  uint64 // geometry epoch pinned at Dial (0 from a standalone server)

	// serverMaxBatch is the per-frame op limit the handshake learned (0
	// until then): the mux clamps its coalescing window to it and explicit
	// batches beyond it fail client-side instead of as a remote StatusBad.
	serverMaxBatch atomic.Uint64

	mu     sync.RWMutex // guards closed vs. in-flight submissions
	closed bool

	frames, ops, merged atomic.Uint64
}

// Dial connects to a palermo server, performs the Stats handshake to
// learn the store geometry, and returns a ready client.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	cl := &Client{cfg: cfg, addr: addr}
	for i := 0; i < cfg.Conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("palermo: dial %s: %w", addr, err)
		}
		slot := &connSlot{}
		slot.cur.Store(newClientConn(cl, nc))
		cl.slots = append(cl.slots, slot)
	}
	ws, err := cl.wireStats(context.Background())
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("palermo: dial %s: handshake: %w", addr, err)
	}
	cl.blocks = ws.Blocks
	cl.shards = int(ws.Shards)
	cl.epoch = ws.Epoch
	cl.serverMaxBatch.Store(uint64(ws.MaxBatch))
	return cl, nil
}

// batchLimit returns the largest batch frame this client may send: the
// wire format's cap, tightened by the server's advertised limit.
func (cl *Client) batchLimit() int {
	limit := wire.MaxOps
	if sm := cl.serverMaxBatch.Load(); sm > 0 && sm < uint64(limit) {
		limit = int(sm)
	}
	return limit
}

// Blocks returns the served store's capacity in blocks.
func (cl *Client) Blocks() uint64 { return cl.blocks }

// Shards returns the served store's shard count.
func (cl *Client) Shards() int { return cl.shards }

// Epoch returns the geometry epoch the Dial handshake pinned: the cluster
// placement version the server held then, or 0 from a standalone server.
// A redial to a server whose epoch has moved fails loudly ("geometry
// changed"), so a Client never silently serves across a placement flip —
// ClusterClient re-dials with a fresh manifest instead.
func (cl *Client) Epoch() uint64 { return cl.epoch }

// Read fetches a block obliviously from the remote store.
func (cl *Client) Read(id uint64) ([]byte, error) {
	return cl.ReadCtx(context.Background(), id)
}

// ReadCtx is Read with cancellation.
func (cl *Client) ReadCtx(ctx context.Context, id uint64) ([]byte, error) {
	if id >= cl.blocks {
		return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, cl.blocks)
	}
	r, err := cl.do(ctx, &call{op: wire.OpRead, id: id})
	if err != nil {
		return nil, err
	}
	return r.data, nil
}

// Write stores a 64-byte block obliviously in the remote store.
func (cl *Client) Write(id uint64, data []byte) error {
	return cl.WriteCtx(context.Background(), id, data)
}

// WriteCtx is Write with cancellation. Note that cancelling abandons the
// wait, not the write: a frame already sent may still commit remotely.
func (cl *Client) WriteCtx(ctx context.Context, id uint64, data []byte) error {
	if id >= cl.blocks {
		return fmt.Errorf("palermo: block %d outside capacity %d", id, cl.blocks)
	}
	if len(data) != BlockSize {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(data))
	}
	_, err := cl.do(ctx, &call{op: wire.OpWrite, id: id, data: append([]byte(nil), data...)})
	return err
}

// ReadBatch fetches many blocks in one frame, preserving the atomic
// same-block dedup semantics of ShardedStore.ReadBatch: the server
// submits the whole batch as one unit.
func (cl *Client) ReadBatch(ids []uint64) ([][]byte, error) {
	return cl.ReadBatchCtx(context.Background(), ids)
}

// ReadBatchCtx is ReadBatch with cancellation.
func (cl *Client) ReadBatchCtx(ctx context.Context, ids []uint64) ([][]byte, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if limit := cl.batchLimit(); len(ids) > limit {
		return nil, fmt.Errorf("palermo: batch of %d ops exceeds the server limit of %d", len(ids), limit)
	}
	for _, id := range ids {
		if id >= cl.blocks {
			return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, cl.blocks)
		}
	}
	r, err := cl.do(ctx, &call{op: wire.OpReadBatch, ids: append([]uint64(nil), ids...)})
	if err != nil {
		return nil, err
	}
	return r.batch, nil
}

// WriteBatch stores blocks[i] under ids[i] in one frame.
func (cl *Client) WriteBatch(ids []uint64, blocks [][]byte) error {
	return cl.WriteBatchCtx(context.Background(), ids, blocks)
}

// WriteBatchCtx is WriteBatch with cancellation.
func (cl *Client) WriteBatchCtx(ctx context.Context, ids []uint64, blocks [][]byte) error {
	if len(ids) != len(blocks) {
		return fmt.Errorf("palermo: WriteBatch got %d ids but %d blocks", len(ids), len(blocks))
	}
	if len(ids) == 0 {
		return nil
	}
	if limit := cl.batchLimit(); len(ids) > limit {
		return fmt.Errorf("palermo: batch of %d ops exceeds the server limit of %d", len(ids), limit)
	}
	cp := make([][]byte, len(blocks))
	for i, id := range ids {
		if id >= cl.blocks {
			return fmt.Errorf("palermo: block %d outside capacity %d", id, cl.blocks)
		}
		if len(blocks[i]) != BlockSize {
			return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(blocks[i]))
		}
		cp[i] = append([]byte(nil), blocks[i]...)
	}
	_, err := cl.do(ctx, &call{op: wire.OpWriteBatch, ids: append([]uint64(nil), ids...), blocks: cp})
	return err
}

// Stats fetches the remote service-layer snapshot.
func (cl *Client) Stats() (ServiceStats, error) {
	ss, _, err := cl.Snapshot()
	return ss, err
}

// Traffic fetches the remote store's accumulated traffic report.
func (cl *Client) Traffic() (TrafficReport, error) {
	_, tr, err := cl.Snapshot()
	return tr, err
}

// Snapshot fetches Stats and Traffic in one wire operation. It satisfies
// internal/loadgen.Target, so the load generator drives remote stores
// exactly like in-process ones.
func (cl *Client) Snapshot() (ServiceStats, TrafficReport, error) {
	ws, err := cl.wireStats(context.Background())
	if err != nil {
		return ServiceStats{}, TrafficReport{}, err
	}
	ss := ServiceStats{
		Reads: ws.Reads, Writes: ws.Writes, DedupHits: ws.DedupHits,
		Sheds:    ws.Sheds,
		ReadLat:  fromWireLatency(ws.ReadLat),
		WriteLat: fromWireLatency(ws.WriteLat),
		QueueLat: fromWireLatency(ws.QueueLat),
		ExecLat:  fromWireLatency(ws.ExecLat),
	}
	tr := TrafficReport{
		Reads: ws.EngineReads, Writes: ws.EngineWrites,
		DRAMReads: ws.DRAMReads, DRAMWrites: ws.DRAMWrites,
		StashPeak:      int(ws.StashPeak),
		TreeTopHits:    ws.TreeTopHits,
		PrefetchIssued: ws.PrefetchIssued, PrefetchUsed: ws.PrefetchUsed, PrefetchStale: ws.PrefetchStale,
	}
	if ops := tr.Reads + tr.Writes; ops > 0 {
		tr.AmplificationFactor = float64(tr.DRAMReads+tr.DRAMWrites) / float64(ops)
	}
	return ss, tr, nil
}

// Manifest fetches the server's current placement manifest as canonical
// JSON (see internal/cluster). A standalone server has no manifest and
// answers with an error.
func (cl *Client) Manifest() ([]byte, error) {
	return cl.ManifestCtx(context.Background())
}

// ManifestCtx is Manifest with cancellation.
func (cl *Client) ManifestCtx(ctx context.Context) ([]byte, error) {
	r, err := cl.do(ctx, &call{op: wire.OpManifest})
	if err != nil {
		return nil, err
	}
	return r.raw, nil
}

// Migrate asks the server — which must own the shard — to push it to the
// cluster node at target and cut ownership over (the admin trigger behind
// palermo-ctl migrate). Blocks until the migration commits or fails; the
// call returning nil means the placement flipped and the shard is now
// served by target.
func (cl *Client) Migrate(shard int, target string) error {
	return cl.MigrateCtx(context.Background(), shard, target)
}

// MigrateCtx is Migrate with cancellation. Cancelling abandons the wait,
// not the migration: a request already sent may still complete remotely.
func (cl *Client) MigrateCtx(ctx context.Context, shard int, target string) error {
	if shard < 0 || shard >= cl.shards {
		return fmt.Errorf("palermo: shard %d outside store's %d shards", shard, cl.shards)
	}
	_, err := cl.do(ctx, &call{op: wire.OpMigrate, id: uint64(shard), target: target})
	return err
}

func fromWireLatency(l wire.Latency) LatencySummary {
	return LatencySummary{N: l.N, MeanUs: l.MeanUs, P50Us: l.P50Us, P99Us: l.P99Us}
}

func (cl *Client) wireStats(ctx context.Context) (wire.Stats, error) {
	r, err := cl.do(ctx, &call{op: wire.OpStats})
	if err != nil {
		return wire.Stats{}, err
	}
	return r.stats, nil
}

// NetStats returns the client-side wire counters.
func (cl *Client) NetStats() ClientNetStats {
	return ClientNetStats{
		FramesSent: cl.frames.Load(),
		Ops:        cl.ops.Load(),
		MergedOps:  cl.merged.Load(),
	}
}

// Close shuts the client down gracefully: stop accepting operations,
// flush queued frames, wait for outstanding responses, then close the
// connections. With a CloseTimeout configured, a peer that never answers
// is abandoned after the deadline: the sockets are force-closed and the
// pending operations fail with a connection-lost error. Idempotent.
// Operations after Close return ErrClosed.
func (cl *Client) Close() error {
	// Arm the escape hatch before anything that can block: a submitter
	// parked on a full send queue holds the read lock, so against a
	// stalled peer even the write-lock acquisition below can wedge.
	// Force-closing the live sockets breaks the jam — readers fail,
	// readerDone closes, parked submitters bail out.
	if cl.cfg.CloseTimeout > 0 {
		t := time.AfterFunc(cl.cfg.CloseTimeout, func() {
			for _, slot := range cl.slots {
				slot.cur.Load().nc.Close()
			}
		})
		defer t.Stop()
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	// Collect every connection ever created — the live one per slot plus
	// the broken ones redials retired — and close their send queues. No
	// redial can race this: redials run under the read lock.
	var conns []*clientConn
	for _, slot := range cl.slots {
		conns = append(conns, slot.cur.Load())
		conns = append(conns, slot.retired...)
		slot.retired = nil
	}
	for _, cc := range conns {
		close(cc.sendq)
	}
	cl.mu.Unlock()
	// Second timer for the drain phase: it covers the exact connection
	// set, including one a redial swapped in after the pre-lock timer
	// fired (worst case the two phases each wait a full CloseTimeout).
	if cl.cfg.CloseTimeout > 0 {
		t := time.AfterFunc(cl.cfg.CloseTimeout, func() {
			for _, cc := range conns {
				cc.nc.Close() // readers fail, draining unblocks below
			}
		})
		defer t.Stop()
	}
	for _, cc := range conns {
		<-cc.muxDone
		cc.drainInFlight()
		cc.nc.Close()
		<-cc.readerDone
	}
	return nil
}

// do submits one call and waits for its result or ctx cancellation.
func (cl *Client) do(ctx context.Context, ca *call) (callResult, error) {
	ca.done = make(chan callResult, 1)
	cl.mu.RLock()
	if cl.closed {
		cl.mu.RUnlock()
		return callResult{}, fmt.Errorf("palermo: client: %w", ErrClosed)
	}
	slot := cl.slots[cl.next.Add(1)%uint64(len(cl.slots))]
	cc, err := slot.conn(cl)
	if err != nil {
		cl.mu.RUnlock()
		return callResult{}, err
	}
	// Holding the read lock across the (blocking, back-pressured) send is
	// the same discipline as serve.Service.enqueue: Close cannot close
	// sendq until every in-flight send has released the lock.
	select {
	case cc.sendq <- ca:
	case <-ctx.Done():
		err = ctx.Err()
	case <-cc.readerDone:
		err = cc.brokenErr()
	}
	cl.mu.RUnlock()
	if err != nil {
		return callResult{}, err
	}
	select {
	case r := <-ca.done:
		return r, r.err
	case <-ctx.Done():
		// Abandon the wait; the reader resolves into the buffered channel
		// later and the result is garbage-collected.
		return callResult{}, ctx.Err()
	}
}

// call is one queued operation.
type call struct {
	op     byte
	id     uint64
	data   []byte
	ids    []uint64
	blocks [][]byte
	target string          // OpMigrate: receiving node address
	done   chan callResult // buffered; resolved exactly once
}

type callResult struct {
	data  []byte
	batch [][]byte
	raw   []byte // OpManifest: response body, verbatim
	stats wire.Stats
	err   error
}

// pendingFrame tracks one sent request frame awaiting its response.
// merged marks a frame the mux coalesced out of single-block calls: its
// batch response fans back out to the individual callers.
type pendingFrame struct {
	op     byte
	merged bool
	calls  []*call
}

// connSlot is one position in the connection pool. The slot outlives any
// single TCP connection: when the current one breaks, the next operation
// routed here dials a replacement. Broken predecessors are parked in
// retired (their mux keeps failing late submissions) until Close reaps
// them.
type connSlot struct {
	mu      sync.Mutex // serializes redials; retired is guarded by cl.mu vs. Close
	cur     atomic.Pointer[clientConn]
	retired []*clientConn
}

// conn returns the slot's connection, transparently re-dialing a broken
// one. Called with cl.mu read-held, so a successful redial can never race
// Close (which holds the write lock to reap connections).
func (s *connSlot) conn(cl *Client) (*clientConn, error) {
	cc := s.cur.Load()
	if !cc.isBroken() {
		return cc, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cc = s.cur.Load(); !cc.isBroken() {
		return cc, nil // another caller already replaced it
	}
	nc, err := net.DialTimeout("tcp", cl.addr, cl.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("palermo: client: redial %s: %w", cl.addr, err)
	}
	// Repeat the Stats handshake on the fresh socket: the server may have
	// restarted since Dial, so the advertised batch limit must be
	// refreshed — and a changed geometry means this is a different store,
	// which silent adaptation would paper over.
	ws, err := cl.rawHandshake(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("palermo: client: redial %s: handshake: %w", cl.addr, err)
	}
	if (cl.blocks != 0 || cl.shards != 0) && (ws.Blocks != cl.blocks || int(ws.Shards) != cl.shards || ws.Epoch != cl.epoch) {
		nc.Close()
		return nil, fmt.Errorf("palermo: client: redial %s: server geometry changed (%d blocks / %d shards, epoch %d; client expects %d / %d, epoch %d); dial a new client",
			cl.addr, ws.Blocks, ws.Shards, ws.Epoch, cl.blocks, cl.shards, cl.epoch)
	}
	cl.serverMaxBatch.Store(uint64(ws.MaxBatch))
	s.retired = append(s.retired, cc)
	fresh := newClientConn(cl, nc)
	s.cur.Store(fresh)
	return fresh, nil
}

// rawHandshake performs one synchronous Stats exchange directly on a
// socket that has no mux or reader yet (a redial's fresh connection).
func (cl *Client) rawHandshake(nc net.Conn) (wire.Stats, error) {
	if to := cl.cfg.DialTimeout; to > 0 {
		nc.SetDeadline(time.Now().Add(to))
		defer nc.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(nc, wire.OpStats, 1, nil); err != nil {
		return wire.Stats{}, err
	}
	f, err := wire.ReadFrame(nc)
	if err != nil {
		return wire.Stats{}, err
	}
	st, body, msg, err := wire.ParseResp(f.Payload)
	if err != nil {
		return wire.Stats{}, err
	}
	if st != wire.StatusOK {
		return wire.Stats{}, remoteErr(st, msg)
	}
	return wire.ParseStats(body)
}

// clientConn is one pooled connection: a mux goroutine owns the write
// side, a reader goroutine owns the read side.
type clientConn struct {
	cl    *Client
	nc    net.Conn
	sendq chan *call
	sem   chan struct{} // in-flight window tokens

	mu      sync.Mutex
	pending map[uint64]*pendingFrame
	broken  error

	muxDone    chan struct{}
	readerDone chan struct{}
}

func newClientConn(cl *Client, nc net.Conn) *clientConn {
	cc := &clientConn{
		cl:         cl,
		nc:         nc,
		sendq:      make(chan *call, cl.cfg.MaxInFlight),
		sem:        make(chan struct{}, cl.cfg.MaxInFlight),
		pending:    make(map[uint64]*pendingFrame),
		muxDone:    make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	go cc.mux()
	go cc.reader()
	return cc
}

// isBroken reports whether the connection can no longer carry operations
// (its reader died or is about to: fail marks broken before readerDone
// closes).
func (cc *clientConn) isBroken() bool {
	select {
	case <-cc.readerDone:
		return true
	default:
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.broken != nil
}

func (cc *clientConn) brokenErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.broken != nil {
		return cc.broken
	}
	return fmt.Errorf("palermo: client: connection lost")
}

// fail marks the connection broken and resolves every pending call.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.broken == nil {
		cc.broken = fmt.Errorf("palermo: client: connection lost: %w", err)
	}
	pend := cc.pending
	cc.pending = make(map[uint64]*pendingFrame)
	broken := cc.broken
	cc.mu.Unlock()
	for _, pf := range pend {
		for _, ca := range pf.calls {
			ca.done <- callResult{err: broken}
		}
	}
}

// drainInFlight waits until every outstanding frame has been answered (or
// the connection broke), by acquiring the whole in-flight window.
func (cc *clientConn) drainInFlight() {
	for i := 0; i < cap(cc.sem); i++ {
		select {
		case cc.sem <- struct{}{}:
		case <-cc.readerDone:
			return
		}
	}
}

// mux drains the send queue, coalescing concurrent single-block calls
// into batch frames, and writes request frames until the queue closes.
func (cc *clientConn) mux() {
	defer close(cc.muxDone)
	// On any exit path, keep consuming the send queue and failing calls
	// until Close closes it: a dead connection must never strand a caller
	// that raced its submission past the mux's death. (After a clean
	// drain the queue is already closed and empty, so this is a no-op.)
	defer func() {
		for ca := range cc.sendq {
			ca.done <- callResult{err: cc.brokenErr()}
		}
	}()
	bw := bufio.NewWriter(cc.nc)
	var reqID uint64
	window := make([]*call, 0, cc.cl.cfg.BatchWindow)
	closing := false
	for !closing {
		first, ok := <-cc.sendq
		if !ok {
			return
		}
		// Clamp coalescing to what the server accepts per frame, so a
		// merged batch can never come back StatusBad.
		maxWindow := cc.cl.cfg.BatchWindow
		if limit := cc.cl.batchLimit(); maxWindow > limit {
			maxWindow = limit
		}
		window = append(window[:0], first)
		for len(window) < maxWindow {
			select {
			case more, open := <-cc.sendq:
				if !open {
					closing = true
				} else {
					window = append(window, more)
					continue
				}
			default:
			}
			break
		}
		// Partition the window into frame-sized groups: all single reads,
		// all single writes, then every explicit batch/stats call alone.
		var reads, writes []*call
		groups := make([][]*call, 0, 2)
		for _, ca := range window {
			switch ca.op {
			case wire.OpRead:
				reads = append(reads, ca)
			case wire.OpWrite:
				writes = append(writes, ca)
			default:
				groups = append(groups, []*call{ca})
			}
		}
		if len(reads) > 0 {
			groups = append(groups, reads)
		}
		if len(writes) > 0 {
			groups = append(groups, writes)
		}
		for i, group := range groups {
			if cc.sendGroup(bw, &reqID, group) {
				continue
			}
			// The failed group's calls are already resolved (by sendFrame
			// or, if the frame reached pending, by the reader's fail);
			// resolve the never-sent remainder before exiting.
			broken := cc.brokenErr()
			for _, later := range groups[i+1:] {
				for _, ca := range later {
					ca.done <- callResult{err: broken}
				}
			}
			return
		}
		if err := bw.Flush(); err != nil {
			cc.nc.Close() // reader notices and fails all pending
			return
		}
	}
}

// sendGroup emits one frame for a group: a pass-through frame for an
// explicit batch/stats/single call, a coalesced batch frame for several
// single-block calls of the same kind.
func (cc *clientConn) sendGroup(bw *bufio.Writer, reqID *uint64, group []*call) bool {
	if len(group) == 1 {
		ca := group[0]
		return cc.sendFrame(bw, reqID, ca.op, cc.encode(ca), &pendingFrame{op: ca.op, calls: group})
	}
	return cc.sendMerged(bw, reqID, group[0].op, group)
}

// sendMerged emits one frame for a window's single-block reads or writes:
// a plain op for one call, a coalesced batch frame for several.
func (cc *clientConn) sendMerged(bw *bufio.Writer, reqID *uint64, op byte, calls []*call) bool {
	switch {
	case len(calls) == 0:
		return true
	case len(calls) == 1:
		return cc.sendFrame(bw, reqID, op, cc.encode(calls[0]), &pendingFrame{op: op, calls: calls})
	}
	cc.cl.merged.Add(uint64(len(calls)))
	var payload []byte
	var err error
	if op == wire.OpRead {
		ids := make([]uint64, len(calls))
		for i, ca := range calls {
			ids[i] = ca.id
		}
		payload, err = wire.AppendReadBatchReq(nil, ids)
		op = wire.OpReadBatch
	} else {
		ids := make([]uint64, len(calls))
		blocks := make([][]byte, len(calls))
		for i, ca := range calls {
			ids[i], blocks[i] = ca.id, ca.data
		}
		payload, err = wire.AppendWriteBatchReq(nil, ids, blocks)
		op = wire.OpWriteBatch
	}
	if err != nil {
		// Impossible by construction (sizes validated at the API); fail
		// the calls rather than wedge them.
		for _, ca := range calls {
			ca.done <- callResult{err: err}
		}
		return true
	}
	return cc.sendFrame(bw, reqID, op, payload, &pendingFrame{op: op, merged: true, calls: calls})
}

// encode builds a call's request payload.
func (cc *clientConn) encode(ca *call) []byte {
	switch ca.op {
	case wire.OpRead:
		return wire.AppendReadReq(nil, ca.id)
	case wire.OpWrite:
		return wire.AppendWriteReq(nil, ca.id, ca.data)
	case wire.OpReadBatch:
		p, _ := wire.AppendReadBatchReq(nil, ca.ids)
		return p
	case wire.OpWriteBatch:
		p, _ := wire.AppendWriteBatchReq(nil, ca.ids, ca.blocks)
		return p
	case wire.OpMigrate:
		p, _ := wire.AppendMigrateReq(nil, uint32(ca.id), ca.target)
		return p
	}
	return nil // OpStats, OpManifest
}

// sendFrame registers the pending entry and writes one request frame.
// Returns false when the connection is done for (the mux must exit).
func (cc *clientConn) sendFrame(bw *bufio.Writer, reqID *uint64, op byte, payload []byte, pf *pendingFrame) bool {
	select {
	case cc.sem <- struct{}{}: // in-flight window token free: proceed
	default:
		// The window is full. Frames this drain already buffered must
		// reach the server before we block, or the responses that release
		// tokens can never arrive — an unflushed frame holding the whole
		// window would deadlock the connection (e.g. MaxInFlight 1 with a
		// window that splits into a read group and a write group).
		if err := bw.Flush(); err != nil {
			cc.nc.Close() // reader notices and fails all pending
			broken := cc.brokenErr()
			for _, ca := range pf.calls {
				ca.done <- callResult{err: broken}
			}
			return false
		}
		select {
		case cc.sem <- struct{}{}:
		case <-cc.readerDone:
			broken := cc.brokenErr()
			for _, ca := range pf.calls {
				ca.done <- callResult{err: broken}
			}
			return false
		}
	}
	*reqID++
	id := *reqID
	cc.mu.Lock()
	if cc.broken != nil {
		broken := cc.broken
		cc.mu.Unlock()
		<-cc.sem
		for _, ca := range pf.calls {
			ca.done <- callResult{err: broken}
		}
		return false
	}
	cc.pending[id] = pf
	cc.mu.Unlock()
	cc.cl.frames.Add(1)
	// Count the operations the frame carries: each single-block call is
	// one, an explicit batch call is its id count.
	var ops uint64
	for _, ca := range pf.calls {
		if n := len(ca.ids); n > 0 {
			ops += uint64(n)
		} else {
			ops++
		}
	}
	cc.cl.ops.Add(ops)
	if err := wire.WriteFrame(bw, op, id, payload); err != nil {
		cc.nc.Close() // poison the conn; reader fails everything pending
		return false
	}
	return true
}

// reader resolves response frames against the pending map until the
// stream ends, then fails whatever is left.
func (cc *clientConn) reader() {
	defer close(cc.readerDone)
	br := bufio.NewReader(cc.nc)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		pf, ok := cc.pending[f.ReqID]
		delete(cc.pending, f.ReqID)
		cc.mu.Unlock()
		if !ok {
			// A response to a request we never sent: the stream cannot be
			// trusted any further.
			cc.fail(fmt.Errorf("unexpected response id %d", f.ReqID))
			return
		}
		<-cc.sem
		cc.resolve(pf, f)
	}
}

// resolve decodes one response frame and fans results out to the frame's
// calls.
func (cc *clientConn) resolve(pf *pendingFrame, f wire.Frame) {
	st, body, msg, err := wire.ParseResp(f.Payload)
	if err == nil && st != wire.StatusOK {
		err = remoteErr(st, msg)
	}
	if err != nil {
		for _, ca := range pf.calls {
			ca.done <- callResult{err: err}
		}
		return
	}
	switch pf.op {
	case wire.OpRead:
		blk, derr := wire.ParseReadResp(body)
		if derr == nil {
			blk = append([]byte(nil), blk...)
		}
		pf.calls[0].done <- callResult{data: blk, err: derr}
	case wire.OpWrite, wire.OpWriteBatch:
		for _, ca := range pf.calls {
			ca.done <- callResult{}
		}
	case wire.OpReadBatch:
		blocks, derr := wire.ParseReadBatchResp(body)
		if derr == nil && pf.merged && len(blocks) != len(pf.calls) {
			derr = fmt.Errorf("palermo: client: merged batch answered %d of %d ops", len(blocks), len(pf.calls))
		}
		if derr != nil {
			for _, ca := range pf.calls {
				ca.done <- callResult{err: derr}
			}
			return
		}
		if pf.merged {
			for i, ca := range pf.calls {
				ca.done <- callResult{data: append([]byte(nil), blocks[i]...)}
			}
			return
		}
		out := make([][]byte, len(blocks))
		for i, b := range blocks {
			out[i] = append([]byte(nil), b...)
		}
		pf.calls[0].done <- callResult{batch: out}
	case wire.OpStats:
		stats, derr := wire.ParseStats(body)
		pf.calls[0].done <- callResult{stats: stats, err: derr}
	case wire.OpManifest:
		pf.calls[0].done <- callResult{raw: append([]byte(nil), body...)}
	case wire.OpMigrate:
		pf.calls[0].done <- callResult{}
	default:
		for _, ca := range pf.calls {
			ca.done <- callResult{err: fmt.Errorf("palermo: client: unexpected response op %d", f.Op)}
		}
	}
}

// remoteErr maps a wire status onto the client error surface: a draining
// or closed server satisfies errors.Is(err, ErrClosed); other statuses
// carry the server's message.
func remoteErr(st wire.Status, msg string) error {
	if st == wire.StatusClosed {
		return fmt.Errorf("palermo: remote store closed: %w", ErrClosed)
	}
	if st == wire.StatusWrongEpoch {
		if msg == "" {
			return ErrWrongEpoch
		}
		return fmt.Errorf("%s: %w", msg, ErrWrongEpoch)
	}
	if st == wire.StatusRetry {
		if msg == "" {
			return ErrRetry
		}
		return fmt.Errorf("%s: %w", msg, ErrRetry)
	}
	if msg == "" {
		msg = fmt.Sprintf("remote error (status %d)", st)
	}
	return errors.New(msg)
}
