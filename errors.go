package palermo

import (
	"palermo/internal/netserve"
	"palermo/internal/serve"
)

// ErrClosed is the sentinel every Store/ShardedStore operation returns
// (possibly wrapped) once Close has begun. Test with errors.Is:
//
//	if errors.Is(err, palermo.ErrClosed) { ... }
var ErrClosed = serve.ErrClosed

// ErrWrongEpoch is the sentinel a cluster node returns (possibly wrapped)
// for a request that named a shard the node does not own at its current
// geometry epoch — typically because a live migration moved the shard
// since the client fetched its placement manifest. The rejected frame
// executed none of its operations, so the correct reaction is exactly
// what ClusterClient does transparently: refetch the manifest, re-route,
// and retry. Test with errors.Is:
//
//	if errors.Is(err, palermo.ErrWrongEpoch) { ... }
var ErrWrongEpoch = netserve.ErrWrongEpoch

// ErrRetry is the sentinel an operation returns (possibly wrapped) when
// the service shed it under overload: its admission deadline
// (ShardedStoreConfig.AdmissionDeadline) expired while it waited in a
// shard queue, so the worker dropped it before any engine access. The
// operation did not execute — retrying (ideally after backing off) is
// always safe. Remote clients see the same sentinel: the server answers
// a shed op with a retry status that Client maps back here. Test with
// errors.Is:
//
//	if errors.Is(err, palermo.ErrRetry) { ... }
var ErrRetry = serve.ErrRetry
