package palermo

import "palermo/internal/serve"

// ErrClosed is the sentinel every Store/ShardedStore operation returns
// (possibly wrapped) once Close has begun. Test with errors.Is:
//
//	if errors.Is(err, palermo.ErrClosed) { ... }
var ErrClosed = serve.ErrClosed
