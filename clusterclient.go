package palermo

// ClusterClient is the multi-node form of Client: it routes every block id
// to the owning node through the placement manifest (internal/cluster) and
// scatter/gathers batches across per-node connection pools, preserving the
// §6 intra-batch same-block dedup fan-out (one frame per node per batch).
//
//	cc, _ := palermo.DialCluster([]string{"10.0.0.1:7070", "10.0.0.2:7070"}, palermo.ClientConfig{})
//	defer cc.Close()
//	blocks, _ := cc.ReadBatch([]uint64{1, 2, 3, 1})
//
// Placement staleness is handled transparently: a node that no longer owns
// a shard (a live migration moved it) rejects the whole frame with a
// wrong-epoch status and executes none of its operations, so the client
// refetches the manifest, re-routes, and retries exactly the rejected
// groups — no operation is lost or duplicated. Only unrecoverable
// staleness (retries exhausted, no node answering) surfaces to the caller.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"palermo/internal/cluster"
	"palermo/internal/shard"
)

// wrongEpochRetries bounds how many manifest-refresh-and-retry rounds an
// operation attempts before surfacing ErrWrongEpoch; the backoff gives an
// in-flight migration cutover time to flip placement.
const (
	wrongEpochRetries = 10
	wrongEpochBackoff = 25 * time.Millisecond
)

// ClusterClient is a remote handle on a multi-node cluster store.
type ClusterClient struct {
	cfg    ClientConfig
	router shard.Router

	mu      sync.RWMutex
	man     *cluster.Manifest
	clients map[string]*Client
	parked  []*Client // superseded by an epoch bump; closed at Close
	closed  bool
}

// DialCluster connects to the cluster reachable via addrs: it fetches the
// placement manifest from the first answering node, adopts the
// highest-epoch copy, and dials a client pool per owning node. addrs only
// bootstraps discovery — the manifest is the routing authority, so it may
// name nodes not listed here and vice versa.
func DialCluster(addrs []string, cfg ClientConfig) (*ClusterClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("palermo: DialCluster needs at least one node address")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	cc := &ClusterClient{cfg: cfg, clients: make(map[string]*Client)}
	var firstErr error
	for _, addr := range addrs {
		cl, err := Dial(addr, cfg)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		raw, err := cl.Manifest()
		if err != nil {
			cl.Close()
			if firstErr == nil {
				firstErr = fmt.Errorf("palermo: %s is not a cluster node: %w", addr, err)
			}
			continue
		}
		man, err := cluster.Decode(raw)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("palermo: manifest from %s: %w", addr, err)
		}
		if cc.man == nil || man.Epoch > cc.man.Epoch {
			cc.man = man
		}
		cc.clients[addr] = cl
	}
	if cc.man == nil {
		cc.closeAll()
		return nil, fmt.Errorf("palermo: no cluster node reachable: %w", firstErr)
	}
	router, err := shard.NewRouter(cc.man.Blocks, int(cc.man.Shards))
	if err != nil {
		cc.closeAll()
		return nil, fmt.Errorf("palermo: %w", err)
	}
	cc.router = router
	if err := cc.ensureClientsLocked(); err != nil {
		cc.closeAll()
		return nil, err
	}
	return cc, nil
}

func (cc *ClusterClient) closeAll() {
	for _, cl := range cc.clients {
		cl.Close()
	}
	for _, cl := range cc.parked {
		cl.Close()
	}
}

// ensureClientsLocked dials a client for every manifest node that lacks
// one pinned at the current epoch. A client pinned at an older epoch is
// parked (never closed mid-flight — an operation may still hold it) and
// replaced, so redials inside the pool can never resurrect a stale
// geometry. Callers hold mu exclusively (or have exclusive access).
func (cc *ClusterClient) ensureClientsLocked() error {
	var firstErr error
	for _, addr := range cc.man.Nodes() {
		cl, ok := cc.clients[addr]
		if ok && cl.Epoch() == cc.man.Epoch {
			continue
		}
		fresh, err := Dial(addr, cc.cfg)
		if err != nil {
			// Keep a stale client rather than no client: its requests
			// either succeed (the node still owns the shard) or fail
			// loudly with wrong-epoch.
			if firstErr == nil && !ok {
				firstErr = fmt.Errorf("palermo: dial cluster node %s: %w", addr, err)
			}
			continue
		}
		if fresh.Blocks() != cc.man.Blocks || fresh.Shards() != int(cc.man.Shards) {
			fresh.Close()
			return fmt.Errorf("palermo: node %s serves %d blocks / %d shards, manifest says %d / %d",
				addr, fresh.Blocks(), fresh.Shards(), cc.man.Blocks, cc.man.Shards)
		}
		if ok {
			cc.parked = append(cc.parked, cl)
		}
		cc.clients[addr] = fresh
	}
	return firstErr
}

// refresh refetches the manifest from every known node, adopts the highest
// epoch (never regressing), and refreshes the client pool against it.
func (cc *ClusterClient) refresh() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return fmt.Errorf("palermo: cluster client: %w", ErrClosed)
	}
	best := cc.man
	for _, cl := range cc.clients {
		raw, err := cl.Manifest()
		if err != nil {
			continue
		}
		m, err := cluster.Decode(raw)
		if err != nil || m.Blocks != cc.man.Blocks || m.Shards != cc.man.Shards {
			continue
		}
		if m.Epoch > best.Epoch {
			best = m
		}
	}
	cc.man = best
	return cc.ensureClientsLocked()
}

// clientFor resolves an id to (owning client, current epoch).
func (cc *ClusterClient) clientFor(id uint64) (*Client, error) {
	s, _ := cc.router.Route(id)
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	if cc.closed {
		return nil, fmt.Errorf("palermo: cluster client: %w", ErrClosed)
	}
	addr := cc.man.Owner(s)
	cl, ok := cc.clients[addr]
	if !ok {
		return nil, fmt.Errorf("palermo: no connection to node %s (owner of shard %d)", addr, s)
	}
	return cl, nil
}

// retryWrongEpoch runs op, and on a wrong-epoch rejection refetches the
// manifest, re-routes, and retries. Safe because a rejected frame executed
// none of its operations.
func (cc *ClusterClient) retryWrongEpoch(op func() error) error {
	var err error
	for attempt := 0; attempt <= wrongEpochRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * wrongEpochBackoff)
			if rerr := cc.refresh(); rerr != nil {
				return rerr
			}
		}
		if err = op(); err == nil || !errors.Is(err, ErrWrongEpoch) {
			return err
		}
	}
	return err
}

// Blocks returns the cluster store's capacity in blocks.
func (cc *ClusterClient) Blocks() uint64 { return cc.router.Blocks() }

// Shards returns the cluster store's shard count.
func (cc *ClusterClient) Shards() int { return cc.router.Shards() }

// Epoch returns the geometry epoch of the client's current manifest.
func (cc *ClusterClient) Epoch() uint64 {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.man.Epoch
}

// Read fetches a block obliviously from the owning node.
func (cc *ClusterClient) Read(id uint64) ([]byte, error) {
	if id >= cc.Blocks() {
		return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, cc.Blocks())
	}
	var out []byte
	err := cc.retryWrongEpoch(func() error {
		cl, err := cc.clientFor(id)
		if err != nil {
			return err
		}
		out, err = cl.Read(id)
		return err
	})
	return out, err
}

// Write stores a block obliviously on the owning node.
func (cc *ClusterClient) Write(id uint64, data []byte) error {
	if id >= cc.Blocks() {
		return fmt.Errorf("palermo: block %d outside capacity %d", id, cc.Blocks())
	}
	if len(data) != BlockSize {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(data))
	}
	return cc.retryWrongEpoch(func() error {
		cl, err := cc.clientFor(id)
		if err != nil {
			return err
		}
		return cl.Write(id, data)
	})
}

// batchGroup is one node's slice of a scattered batch.
type batchGroup struct {
	cl  *Client
	ids []uint64
	pos []int
}

// partition splits positions of ids into per-owning-node groups under the
// current manifest.
func (cc *ClusterClient) partition(ids []uint64, positions []int) ([]*batchGroup, error) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	if cc.closed {
		return nil, fmt.Errorf("palermo: cluster client: %w", ErrClosed)
	}
	byAddr := make(map[string]*batchGroup)
	var out []*batchGroup
	for _, i := range positions {
		s, _ := cc.router.Route(ids[i])
		addr := cc.man.Owner(s)
		g, ok := byAddr[addr]
		if !ok {
			cl, have := cc.clients[addr]
			if !have {
				return nil, fmt.Errorf("palermo: no connection to node %s (owner of shard %d)", addr, s)
			}
			g = &batchGroup{cl: cl}
			byAddr[addr] = g
			out = append(out, g)
		}
		g.ids = append(g.ids, ids[i])
		g.pos = append(g.pos, i)
	}
	return out, nil
}

// ReadBatch fetches many blocks, one frame per owning node, all nodes in
// parallel, results merged back into submission order. Each node serves
// its frame as one atomic batch, so the §6 same-block dedup fan-out holds
// within each node's subset — identical to ShardedStore.ReadBatch, whose
// dedup window is also per-shard. On a wrong-epoch rejection only the
// rejected node's group is re-routed and retried (the frame executed
// nothing), so no block is read twice into a different position.
func (cc *ClusterClient) ReadBatch(ids []uint64) ([][]byte, error) {
	out := make([][]byte, len(ids))
	for _, id := range ids {
		if id >= cc.Blocks() {
			return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, cc.Blocks())
		}
	}
	return out, cc.scatter(ids, func(g *batchGroup) error {
		blocks, err := g.cl.ReadBatch(g.ids)
		if err != nil {
			return err
		}
		if len(blocks) != len(g.ids) {
			return fmt.Errorf("palermo: node answered %d of %d batch reads", len(blocks), len(g.ids))
		}
		for j, p := range g.pos {
			out[p] = blocks[j]
		}
		return nil
	})
}

// WriteBatch stores blocks[i] under ids[i], one frame per owning node (see
// ReadBatch for the scatter/gather and retry semantics).
func (cc *ClusterClient) WriteBatch(ids []uint64, blocks [][]byte) error {
	if len(ids) != len(blocks) {
		return fmt.Errorf("palermo: WriteBatch got %d ids but %d blocks", len(ids), len(blocks))
	}
	for i, id := range ids {
		if id >= cc.Blocks() {
			return fmt.Errorf("palermo: block %d outside capacity %d", id, cc.Blocks())
		}
		if len(blocks[i]) != BlockSize {
			return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(blocks[i]))
		}
	}
	return cc.scatter(ids, func(g *batchGroup) error {
		sub := make([][]byte, len(g.pos))
		for j, p := range g.pos {
			sub[j] = blocks[p]
		}
		return g.cl.WriteBatch(g.ids, sub)
	})
}

// scatter partitions the batch by owner, runs every group concurrently,
// and retries (after a manifest refresh) exactly the groups a node
// rejected with wrong-epoch. Non-epoch errors surface immediately.
func (cc *ClusterClient) scatter(ids []uint64, serve func(*batchGroup) error) error {
	pending := make([]int, len(ids))
	for i := range pending {
		pending[i] = i
	}
	var err error
	for attempt := 0; attempt <= wrongEpochRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * wrongEpochBackoff)
			if rerr := cc.refresh(); rerr != nil {
				return rerr
			}
		}
		var groups []*batchGroup
		groups, err = cc.partition(ids, pending)
		if err != nil {
			return err
		}
		errs := make([]error, len(groups))
		var wg sync.WaitGroup
		for gi, g := range groups {
			wg.Add(1)
			go func(gi int, g *batchGroup) {
				defer wg.Done()
				errs[gi] = serve(g)
			}(gi, g)
		}
		wg.Wait()
		pending = pending[:0]
		err = nil
		for gi, gerr := range errs {
			if gerr == nil {
				continue
			}
			if !errors.Is(gerr, ErrWrongEpoch) {
				return gerr // a real failure beats more re-routing
			}
			err = gerr
			pending = append(pending, groups[gi].pos...)
		}
		if len(pending) == 0 {
			return nil
		}
	}
	return err
}

// Snapshot merges every node's service and traffic counters into one
// cluster-wide view (internal/loadgen.Target). Operation, dedup, and
// traffic counts are exact sums: each operation is served by exactly one
// node, and a migrated shard's engine counters travel with it while its
// old service-layer history stays in the source's retired stats. Latency
// summaries cannot be merged exactly from condensed form — the mean and
// percentiles here are N-weighted combinations of the per-node summaries,
// an approximation.
func (cc *ClusterClient) Snapshot() (ServiceStats, TrafficReport, error) {
	cc.mu.RLock()
	clients := make([]*Client, 0, len(cc.clients))
	for _, cl := range cc.clients {
		clients = append(clients, cl)
	}
	cc.mu.RUnlock()
	var ss ServiceStats
	var tr TrafficReport
	for _, cl := range clients {
		s, t, err := cl.Snapshot()
		if err != nil {
			return ServiceStats{}, TrafficReport{}, err
		}
		ss.Reads += s.Reads
		ss.Writes += s.Writes
		ss.DedupHits += s.DedupHits
		ss.Sheds += s.Sheds
		ss.PrefetchPlanned += s.PrefetchPlanned
		ss.ReadLat = mergeLatApprox(ss.ReadLat, s.ReadLat)
		ss.WriteLat = mergeLatApprox(ss.WriteLat, s.WriteLat)
		ss.QueueLat = mergeLatApprox(ss.QueueLat, s.QueueLat)
		ss.ExecLat = mergeLatApprox(ss.ExecLat, s.ExecLat)
		tr.Reads += t.Reads
		tr.Writes += t.Writes
		tr.DRAMReads += t.DRAMReads
		tr.DRAMWrites += t.DRAMWrites
		tr.TreeTopHits += t.TreeTopHits
		tr.PrefetchIssued += t.PrefetchIssued
		tr.PrefetchUsed += t.PrefetchUsed
		tr.PrefetchStale += t.PrefetchStale
		if t.StashPeak > tr.StashPeak {
			tr.StashPeak = t.StashPeak
		}
	}
	if ops := tr.Reads + tr.Writes; ops > 0 {
		tr.AmplificationFactor = float64(tr.DRAMReads+tr.DRAMWrites) / float64(ops)
	}
	return ss, tr, nil
}

// mergeLatApprox combines two latency summaries N-weighted. Exact for N
// and the mean; an approximation for the percentiles (the underlying
// histograms live on the nodes).
func mergeLatApprox(a, b LatencySummary) LatencySummary {
	if a.N == 0 {
		return b
	}
	if b.N == 0 {
		return a
	}
	n := a.N + b.N
	wa, wb := float64(a.N)/float64(n), float64(b.N)/float64(n)
	return LatencySummary{
		N:      n,
		MeanUs: wa*a.MeanUs + wb*b.MeanUs,
		P50Us:  wa*a.P50Us + wb*b.P50Us,
		P99Us:  wa*a.P99Us + wb*b.P99Us,
	}
}

// NetStats sums the per-node client wire counters.
func (cc *ClusterClient) NetStats() ClientNetStats {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	var out ClientNetStats
	for _, cl := range cc.clients {
		ns := cl.NetStats()
		out.FramesSent += ns.FramesSent
		out.Ops += ns.Ops
		out.MergedOps += ns.MergedOps
	}
	for _, cl := range cc.parked {
		ns := cl.NetStats()
		out.FramesSent += ns.FramesSent
		out.Ops += ns.Ops
		out.MergedOps += ns.MergedOps
	}
	return out
}

// Close closes every node client (current and superseded). Idempotent.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	clients := make([]*Client, 0, len(cc.clients)+len(cc.parked))
	for _, cl := range cc.clients {
		clients = append(clients, cl)
	}
	clients = append(clients, cc.parked...)
	cc.parked = nil
	cc.mu.Unlock()
	var errs []error
	for _, cl := range clients {
		errs = append(errs, cl.Close())
	}
	return errors.Join(errs...)
}
