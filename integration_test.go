package palermo

// Cross-module integration tests: the simulator against the paper's own
// analytical model, the §VI extensions (constant-rate padding, tenant
// isolation), and end-to-end consistency checks that individual package
// tests cannot express.

import (
	"bytes"
	"math"
	"testing"

	"palermo/internal/analytic"
	"palermo/internal/core"
	"palermo/internal/ctrl"
	"palermo/internal/dram"
	"palermo/internal/oram"
	"palermo/internal/rng"
	"palermo/internal/sim"
	"palermo/internal/workload"
)

// TestAnalyticMatchesSimulation reproduces the paper's §III-A cross-check
// in two parts: (1) the simulator satisfies Little's law exactly —
// outstanding reads equal read throughput times read latency — and (2) the
// paper-style occupancy/latency bandwidth estimate lands in the same
// ballpark as the measured utilization.
func TestAnalyticMatchesSimulation(t *testing.T) {
	r, err := Run(ProtoRingORAM, "rand", Options{Requests: 600})
	if err != nil {
		t.Fatal(err)
	}
	errL := analytic.LittleLawError(r.Mem.AvgReadsOut, r.Mem.Reads,
		uint64(r.Mem.Elapsed), r.Mem.AvgReadLatency)
	if errL > 0.08 {
		t.Fatalf("Little's law violated by %.1f%%: timing accounting inconsistent", errL*100)
	}

	// The paper's GB/s arithmetic (64B x outstanding / avg latency) with
	// measured inputs must reproduce the measured read bandwidth share.
	cfg := dram.DefaultConfig()
	est := analytic.BandwidthGBs(r.Mem.AvgReadsOut, r.Mem.AvgReadLatency*0.625) /
		cfg.PeakBandwidthGBs()
	readShare := float64(r.Mem.Reads) * 64 / (float64(r.Mem.Elapsed) * 0.625) /
		cfg.PeakBandwidthGBs()
	if est < readShare*0.9 || est > readShare*1.1 {
		t.Fatalf("paper-style estimate %.3f vs measured read share %.3f: out of band", est, readShare)
	}
	// And the two-class service model must explain most of the latency:
	// measured latency includes queueing, so it exceeds the service time.
	if r.Mem.AvgReadLatency*0.625 < analytic.ExpectedServiceNS(cfg, r.Mem.RowHitRate) {
		t.Fatal("measured latency below pure service time: timing model broken")
	}
}

func TestConstantRatePadding(t *testing.T) {
	// A bursty front end (3-of-4 duty) on the Palermo mesh: the controller
	// must pad idle slots with dummy ORAM requests, keeping total issue
	// volume constant. ~1/3 of real volume must appear as dummies.
	gen, err := workload.New("rand", 1<<24, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.NewBursty(gen, 3, 4)
	cfg := oram.PalermoRingConfig()
	cfg.NLines = 1 << 24
	e, err := oram.NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := core.Mesh{Name: "palermo", Columns: 8}.Run(&eng, mem, e, src,
		ctrl.RunConfig{Requests: 600, Warmup: 300})
	if res.Requests != 600 {
		t.Fatalf("requests = %d", res.Requests)
	}
	ratio := float64(res.Dummies) / float64(res.Requests)
	if ratio < 0.2 || ratio > 0.5 {
		t.Fatalf("padding ratio = %.2f, want ~1/3 for a 3-of-4 duty cycle", ratio)
	}
}

func TestTenantIsolationEndToEnd(t *testing.T) {
	rep, err := TenantIsolation(Options{Requests: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MutualInfo > 0.05 {
		t.Fatalf("tenant identity leaks %.3g bits through latency", rep.MutualInfo)
	}
	if rep.Padding == 0 {
		t.Fatal("bursty mix must require padding")
	}
	// Per-tenant medians must be close: latency is tenant-independent.
	ratio := rep.Medians[0] / rep.Medians[1]
	if math.Abs(ratio-1) > 0.15 {
		t.Fatalf("tenant medians differ by %.0f%%: isolation broken", math.Abs(ratio-1)*100)
	}
}

func TestPathMeshGainsLittle(t *testing.T) {
	// §IV-E: the mesh strategy applied to PathORAM yields limited benefit;
	// applied to RingORAM (Palermo) it yields a large one.
	pathGain, ringGain, err := AblationPathMesh(Options{Requests: 400})
	if err != nil {
		t.Fatal(err)
	}
	if pathGain.Gain() > 1.4 {
		t.Fatalf("PathORAM mesh gain = %.2f, paper says limited (< RingORAM's)", pathGain.Gain())
	}
	if ringGain.Gain() < pathGain.Gain()+0.3 {
		t.Fatalf("RingORAM mesh gain %.2f must clearly exceed PathORAM's %.2f",
			ringGain.Gain(), pathGain.Gain())
	}
}

// TestMeshLabelAlignment guards the out-of-order completion fix: latency
// samples and their FromStash/Leaves/Tags labels must be captured together
// at response time, so the arrays always have equal length even when
// columns retire out of order.
func TestMeshLabelAlignment(t *testing.T) {
	r, err := Run(ProtoPalermo, "redis", Options{Lines: 1 << 22, Requests: 500, KeepLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	n := int(r.RespLat.N())
	if len(r.FromStash) != n || len(r.Leaves) != n {
		t.Fatalf("label arrays misaligned: %d latencies, %d stash labels, %d leaves",
			n, len(r.FromStash), len(r.Leaves))
	}
}

// TestTraceReplayEquivalence: a run driven by a recorded trace must produce
// identical results to the run that recorded it.
func TestTraceReplayEquivalence(t *testing.T) {
	const lines = 1 << 22
	gen1, _ := workload.New("pr", lines, 3)
	live := runMeshWith(t, ctrl.FuncSource(func() (uint64, bool) { return gen1.Next() }))

	gen2, _ := workload.New("pr", lines, 3)
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, gen2, 4000); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ReadTrace("pr", &buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := runMeshWith(t, ctrl.FuncSource(func() (uint64, bool) { return tr.Next() }))

	if live.Cycles != replay.Cycles || live.PlanReads != replay.PlanReads {
		t.Fatalf("replay diverged: %d/%d vs %d/%d cycles/reads",
			live.Cycles, live.PlanReads, replay.Cycles, replay.PlanReads)
	}
}

func runMeshWith(t *testing.T, src ctrl.Source) ctrl.Result {
	t.Helper()
	cfg := oram.PalermoRingConfig()
	cfg.NLines = 1 << 22
	e, err := oram.NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	return core.Mesh{Name: "m", Columns: 8}.Run(&eng, mem, e, src,
		ctrl.RunConfig{Requests: 400, Warmup: 200})
}

// TestRefreshCostVisible: enabling refresh must cost a few percent of
// throughput, not nothing and not a collapse.
func TestRefreshCostVisible(t *testing.T) {
	run := func(refresh bool) float64 {
		gen, _ := workload.New("rand", 1<<22, 1)
		cfg := oram.PalermoRingConfig()
		cfg.NLines = 1 << 22
		e, _ := oram.NewRing(cfg)
		var eng sim.Engine
		dcfg := dram.DefaultConfig()
		if !refresh {
			dcfg.TREFI = 0
		}
		mem := dram.New(&eng, dcfg)
		res := core.Mesh{Name: "m", Columns: 8}.Run(&eng, mem, e,
			ctrl.FuncSource(func() (uint64, bool) { return gen.Next() }),
			ctrl.RunConfig{Requests: 500, Warmup: 250})
		return res.Throughput()
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("refresh must cost something: with=%.4g without=%.4g", with, without)
	}
	if with < without*0.85 {
		t.Fatalf("refresh cost too high: with=%.4g without=%.4g", with, without)
	}
}

// Property-style determinism check across the whole stack with tenants.
func TestTenantMixDeterminism(t *testing.T) {
	run := func() ctrl.Result {
		a, _ := workload.New("llm", 1<<22, 1)
		b, _ := workload.New("redis", 1<<22, 2)
		mix := workload.NewTenants(rng.New(7), a, b)
		return runMeshWith(t, mix)
	}
	r1, r2 := run(), run()
	if r1.Cycles != r2.Cycles {
		t.Fatalf("tenant mix nondeterministic: %d vs %d", r1.Cycles, r2.Cycles)
	}
}
