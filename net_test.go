package palermo

// Tests for the public network surface: Server/Client config validation,
// the automatic batching path, context cancellation, ErrClosed mapping
// across the wire, and clean teardown (no goroutine leaks under -race).

import (
	"bytes"
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"palermo/internal/wire"
)

// startNetStore builds a small store, serves it on a loopback socket, and
// returns a connected client. Cleanup tears everything down in order.
func startNetStore(t *testing.T, storeCfg ShardedStoreConfig, srvCfg ServerConfig, clCfg ClientConfig) (*ShardedStore, *Client) {
	t.Helper()
	st, err := NewShardedStore(storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String(), clCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		if err := <-done; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v", err)
		}
		st.Close()
	})
	return st, cl
}

func TestClientRoundTrip(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 12, Shards: 2}, ServerConfig{}, ClientConfig{})
	if err := cl.Write(9, block(0xC3)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(9)
	if err != nil || !bytes.Equal(got, block(0xC3)) {
		t.Fatalf("round trip failed: %v", err)
	}
	// Unwritten blocks read as zeros through the wire too.
	zero, err := cl.Read(100)
	if err != nil || !bytes.Equal(zero, make([]byte, BlockSize)) {
		t.Fatalf("unwritten block: %v", err)
	}
	// Client-side validation mirrors the store's.
	if err := cl.Write(1<<12, block(0)); err == nil || !strings.Contains(err.Error(), "outside capacity") {
		t.Fatalf("out-of-range write: %v", err)
	}
	if _, err := cl.Read(1 << 12); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := cl.Write(0, []byte("short")); err == nil {
		t.Fatal("short block accepted")
	}
	if err := cl.WriteBatch([]uint64{1, 2}, [][]byte{block(0)}); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	// Empty batches are no-ops, like the in-process store.
	if out, err := cl.ReadBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty ReadBatch: %v", err)
	}
	if err := cl.WriteBatch(nil, nil); err != nil {
		t.Fatalf("empty WriteBatch: %v", err)
	}
}

func TestClientExplicitBatch(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 12, Shards: 2}, ServerConfig{}, ClientConfig{})
	ids := []uint64{1, 2, 3, 2, 1}
	blocks := make([][]byte, len(ids))
	for i, id := range ids {
		blocks[i] = block(byte(id))
	}
	if err := cl.WriteBatch(ids, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if !bytes.Equal(got[i], block(byte(id))) {
			t.Fatalf("position %d (id %d): wrong payload", i, id)
		}
	}
	// Duplicate ids inside one explicit batch still dedup server-side.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DedupHits < 2 {
		t.Fatalf("explicit batch produced %d dedup hits, want >= 2", stats.DedupHits)
	}
}

// TestClientAutoBatching forces coalescing: with a 1-frame in-flight
// window, concurrent single reads pile up in the mux queue and must ride
// shared ReadBatch frames.
func TestClientAutoBatching(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 12, Shards: 2}, ServerConfig{},
		ClientConfig{MaxInFlight: 1, BatchWindow: 16})
	if err := cl.Write(5, block(0x77)); err != nil {
		t.Fatal(err)
	}
	const n = 48
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := cl.Read(5)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, block(0x77)) {
				errs <- errors.New("coalesced read returned wrong payload")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ns := cl.NetStats()
	if ns.MergedOps == 0 {
		t.Fatalf("no reads were coalesced: %+v", ns)
	}
	if ns.FramesSent >= ns.Ops {
		t.Fatalf("batching saved no frames: %+v", ns)
	}
}

// TestClientHonorsServerBatchLimit: the handshake teaches the client the
// server's MaxBatch, so (a) coalesced frames stay under it even when
// BatchWindow is larger, and (b) oversized explicit batches fail
// client-side with a descriptive error instead of a remote StatusBad.
func TestClientHonorsServerBatchLimit(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 12, Shards: 2},
		ServerConfig{MaxBatch: 2},
		ClientConfig{MaxInFlight: 1, BatchWindow: 16})
	if err := cl.Write(3, block(0x42)); err != nil {
		t.Fatal(err)
	}
	// Concurrent single reads pile up behind the 1-frame window; merged
	// frames must be clamped to 2 ops, so every read still succeeds.
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := cl.Read(3)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, block(0x42)) {
				errs <- errors.New("clamped coalesced read returned wrong payload")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Explicit batches beyond the learned limit fail before the wire.
	if _, err := cl.ReadBatch([]uint64{1, 2, 3}); err == nil || !strings.Contains(err.Error(), "server limit of 2") {
		t.Fatalf("over-limit explicit batch: %v", err)
	}
	if err := cl.WriteBatch([]uint64{1, 2, 3}, [][]byte{block(1), block(2), block(3)}); err == nil || !strings.Contains(err.Error(), "server limit of 2") {
		t.Fatalf("over-limit explicit write batch: %v", err)
	}
}

// TestClientMixedWindowSmallInFlight is the regression test for a mux
// deadlock: a coalescing window holding both reads and writes splits into
// two frames, and with MaxInFlight 1 the second frame used to block on
// the in-flight window while the first sat unflushed in the bufio.Writer
// — the server never saw it, so the token never came back and every
// caller (and Close) hung forever. sendFrame must flush buffered frames
// before blocking on the window.
func TestClientMixedWindowSmallInFlight(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 10, Shards: 1}, ServerConfig{},
		ClientConfig{MaxInFlight: 1, BatchWindow: 16})
	const n = 64
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			if i%2 == 0 {
				_, err := cl.Read(uint64(i))
				done <- err
			} else {
				done <- cl.Write(uint64(i), block(byte(i)))
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("mixed read/write window deadlocked with MaxInFlight 1")
		}
	}
}

// TestClientRedialsBrokenConn: a connection that dies under the client
// (server idle-timeout reap, network fault) must not poison its pool slot
// forever — the next operation routed there re-dials.
func TestClientRedialsBrokenConn(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 10, Shards: 1}, ServerConfig{}, ClientConfig{})
	if err := cl.Write(7, block(0xAB)); err != nil {
		t.Fatal(err)
	}
	// Sever the pooled connection out from under the client, as an idle
	// reap would, and wait until the client has noticed.
	cc := cl.slots[0].cur.Load()
	cc.nc.Close()
	select {
	case <-cc.readerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not notice the severed connection")
	}
	// Every subsequent operation must succeed over a fresh connection.
	got, err := cl.Read(7)
	if err != nil {
		t.Fatalf("read after severed connection: %v", err)
	}
	if !bytes.Equal(got, block(0xAB)) {
		t.Fatal("read after redial returned wrong payload")
	}
	if err := cl.Write(8, block(0xCD)); err != nil {
		t.Fatalf("write after redial: %v", err)
	}
	if cur := cl.slots[0].cur.Load(); cur == cc {
		t.Fatal("slot still holds the broken connection")
	}
}

// TestClientCloseTimeout: Close against a peer that stalls completely
// after the handshake must give up after CloseTimeout, failing every
// pending operation instead of hanging forever. The nasty case: with a
// stalled peer and MaxInFlight 1, one op holds the window token, one sits
// in the send queue, and further submitters park inside do() holding the
// client's read lock — so even Close's write-lock acquisition is wedged
// until the force-close timer breaks the jam.
func TestClientCloseTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A stalled server: answers the dial handshake's Stats op, then never
	// reads another byte.
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		f, err := wire.ReadFrame(nc)
		if err != nil || f.Op != wire.OpStats {
			return
		}
		body := wire.AppendStats(nil, wire.Stats{Blocks: 1 << 10, Shards: 1})
		wire.WriteFrame(nc, wire.Resp(wire.OpStats), f.ReqID, wire.AppendOKResp(nil, body))
		<-stop
	}()
	cl, err := Dial(ln.Addr().String(), ClientConfig{
		MaxInFlight:  1,
		BatchWindow:  1, // no coalescing: every write is its own frame
		CloseTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 6
	writeErr := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func(i int) { writeErr <- cl.Write(uint64(i), block(byte(i))) }(i)
	}
	time.Sleep(200 * time.Millisecond) // let the writers park at every stage
	closed := make(chan struct{})
	go func() { cl.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung past CloseTimeout against a stalled server")
	}
	for i := 0; i < writers; i++ {
		select {
		case err := <-writeErr:
			if err == nil {
				t.Fatal("write against a stalled server reported success")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending write not failed by the forced close")
		}
	}
}

// TestClientRedialRefreshesHandshake: a redial repeats the Stats
// handshake, so a restarted server's new batch limit takes effect and a
// restarted server with different geometry — a different store — is
// rejected instead of silently adapted to.
func TestClientRedialRefreshesHandshake(t *testing.T) {
	start := func(addr string, blocks uint64, srvCfg ServerConfig) (*ShardedStore, *Server, net.Listener, chan error) {
		st, err := NewShardedStore(ShardedStoreConfig{Blocks: blocks, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(st, srvCfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		return st, srv, ln, done
	}
	stop := func(st *ShardedStore, srv *Server, done chan error) {
		srv.Close()
		<-done
		st.Close()
	}
	st1, srv1, ln, done1 := start("127.0.0.1:0", 1<<10, ServerConfig{})
	addr := ln.Addr().String()
	cl, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Write(1, block(0xEE)); err != nil {
		t.Fatal(err)
	}
	awaitBroken := func() {
		cc := cl.slots[0].cur.Load()
		select {
		case <-cc.readerDone:
		case <-time.After(5 * time.Second):
			t.Fatal("client never noticed the server going away")
		}
	}
	// Restart on the same address with a tighter batch limit: the redial
	// must learn it, failing oversized explicit batches client-side.
	stop(st1, srv1, done1)
	awaitBroken()
	st2, srv2, _, done2 := start(addr, 1<<10, ServerConfig{MaxBatch: 2})
	if _, err := cl.Read(1); err != nil {
		t.Fatalf("read after same-geometry restart: %v", err)
	}
	if _, err := cl.ReadBatch([]uint64{1, 2, 3}); err == nil || !strings.Contains(err.Error(), "server limit of 2") {
		t.Fatalf("stale batch limit survived the redial: %v", err)
	}
	// Restart with a different geometry: ops must fail loudly, not adapt.
	stop(st2, srv2, done2)
	awaitBroken()
	st3, srv3, _, done3 := start(addr, 1<<11, ServerConfig{})
	defer stop(st3, srv3, done3)
	if _, err := cl.Read(1); err == nil || !strings.Contains(err.Error(), "geometry changed") {
		t.Fatalf("geometry change not rejected: %v", err)
	}
}

// TestClientConcurrentHammer mirrors the ShardedStore hammer over the
// wire: disjoint id ownership per goroutine, exact read verification.
func TestClientConcurrentHammer(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 12, Shards: 2}, ServerConfig{},
		ClientConfig{Conns: 2, BatchWindow: 8})
	const clients = 8
	const opsPer = 60
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			last := make(map[uint64]byte)
			for i := 0; i < opsPer; i++ {
				id := uint64((i*clients+c)*7%(1<<12)/clients*clients) + uint64(c)
				if id >= 1<<12 {
					id = uint64(c)
				}
				if i%3 == 0 {
					fill := byte(i + c)
					if err := cl.Write(id, block(fill)); err != nil {
						errs <- err
						return
					}
					last[id] = fill
				} else {
					got, err := cl.Read(id)
					if err != nil {
						errs <- err
						return
					}
					if want := last[id]; got[0] != want || got[BlockSize-1] != want {
						errs <- errors.New("hammer read corrupted")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	_, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 12, Shards: 1}, ServerConfig{}, ClientConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.ReadCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read: %v", err)
	}
	if err := cl.WriteCtx(ctx, 1, block(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled write: %v", err)
	}
	// The client survives cancellation: later calls still work.
	if err := cl.Write(1, block(0x11)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(1)
	if err != nil || !bytes.Equal(got, block(0x11)) {
		t.Fatalf("post-cancel read: %v", err)
	}
	// A timeout that cannot be met abandons the wait, not the client.
	short, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	if _, err := cl.ReadCtx(short, 1); !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("timeout read: %v", err)
	}
}

// TestClientErrClosedMapping covers both closed surfaces: operations on a
// closed client, and operations against a draining server-side store.
func TestClientErrClosedMapping(t *testing.T) {
	st, cl := startNetStore(t, ShardedStoreConfig{Blocks: 1 << 12, Shards: 1}, ServerConfig{}, ClientConfig{})
	// Close the server-side store while the server still accepts frames:
	// remote ops must come back as ErrClosed through the wire status.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("remote closed store: %v", err)
	}
	if err := cl.Write(1, block(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("remote closed store write: %v", err)
	}
	// Now close the client: local ErrClosed without touching the network.
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal("client Close must be idempotent")
	}
	if _, err := cl.Read(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed client: %v", err)
	}
	if _, err := cl.Stats(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed client stats: %v", err)
	}
}

// TestClientErrRetryMapping: an admission deadline no queued request can
// meet sheds every operation before it touches the engine; the client
// must surface wire.StatusRetry as palermo.ErrRetry (errors.Is-able),
// and the shed count must travel the stats frame — while none of the
// shed ops count as completed work.
func TestClientErrRetryMapping(t *testing.T) {
	_, cl := startNetStore(t,
		ShardedStoreConfig{Blocks: 1 << 12, Shards: 2, AdmissionDeadline: 1},
		ServerConfig{}, ClientConfig{})
	if err := cl.Write(3, block(0xAA)); !errors.Is(err, ErrRetry) {
		t.Fatalf("shed write returned %v, want ErrRetry", err)
	}
	if _, err := cl.Read(3); !errors.Is(err, ErrRetry) {
		t.Fatalf("shed read returned %v, want ErrRetry", err)
	}
	if _, err := cl.ReadBatch([]uint64{1, 2, 3}); !errors.Is(err, ErrRetry) {
		t.Fatalf("shed batch returned %v, want ErrRetry", err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sheds < 3 {
		t.Fatalf("stats frame carried %d sheds, want >= 3", st.Sheds)
	}
	if st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("shed ops counted as completed work: %d reads, %d writes", st.Reads, st.Writes)
	}
}

// TestClientSurvivesDeadServer: once the server is gone, every client
// call — including ones racing into the send queue after the connection
// died — must return an error promptly, never hang.
func TestClientSurvivesDeadServer(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 10, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Write(1, block(1)); err != nil {
		t.Fatal(err)
	}
	// Kill the whole server side.
	srv.Close()
	<-done
	st.Close()
	// Every subsequent call must fail within the test's patience — the
	// old bug stranded callers whose submissions raced past the dead mux.
	for i := 0; i < 20; i++ {
		errCh := make(chan error, 1)
		go func(i int) {
			if i%2 == 0 {
				_, err := cl.Read(1)
				errCh <- err
			} else {
				errCh <- cl.Write(1, block(1))
			}
		}(i)
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatalf("call %d against a dead server succeeded", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d against a dead server hung", i)
		}
	}
}

// TestClientServerTeardownLeaksNothing spins the full stack up and down
// and checks the goroutine count returns to baseline.
func TestClientServerTeardownLeaksNothing(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 10, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(st, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		cl, err := Dial(ln.Addr().String(), ClientConfig{Conns: 2})
		if err != nil {
			t.Fatal(err)
		}
		cl.Write(1, block(1))
		cl.Read(1)
		cl.Close()
		srv.Close()
		<-done
		st.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", base, runtime.NumGoroutine())
}

// TestServerConfigValidation table-drives every ServerConfig field's
// rejection path, plus the nil-store guard.
func TestServerConfigValidation(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 10, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cases := []struct {
		name string
		cfg  ServerConfig
	}{
		{"negative MaxInFlight", ServerConfig{MaxInFlight: -1}},
		{"negative MaxBatch", ServerConfig{MaxBatch: -1}},
		{"MaxBatch beyond wire limit", ServerConfig{MaxBatch: 1<<16 + 1}},
		{"negative IdleTimeout", ServerConfig{IdleTimeout: -time.Second}},
		{"negative WriteTimeout", ServerConfig{WriteTimeout: -time.Second}},
	}
	for _, tc := range cases {
		if _, err := NewServer(st, tc.cfg); err == nil {
			t.Errorf("%s: config %+v must be rejected", tc.name, tc.cfg)
		} else if !strings.HasPrefix(err.Error(), "palermo:") {
			t.Errorf("%s: error %q lacks palermo: prefix", tc.name, err)
		}
	}
	if _, err := NewServer(nil, ServerConfig{}); err == nil {
		t.Error("nil store must be rejected")
	}
}

// TestClientConfigValidation table-drives every ClientConfig field's
// rejection path. Dial validates before connecting, so no server needed.
func TestClientConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  ClientConfig
	}{
		{"negative Conns", ClientConfig{Conns: -1}},
		{"negative MaxInFlight", ClientConfig{MaxInFlight: -1}},
		{"negative BatchWindow", ClientConfig{BatchWindow: -1}},
		{"BatchWindow beyond wire limit", ClientConfig{BatchWindow: 1<<16 + 1}},
		{"negative DialTimeout", ClientConfig{DialTimeout: -time.Second}},
		{"negative CloseTimeout", ClientConfig{CloseTimeout: -time.Second}},
	}
	for _, tc := range cases {
		if _, err := Dial("127.0.0.1:1", tc.cfg); err == nil {
			t.Errorf("%s: config %+v must be rejected", tc.name, tc.cfg)
		} else if !strings.HasPrefix(err.Error(), "palermo:") {
			t.Errorf("%s: error %q lacks palermo: prefix", tc.name, err)
		}
	}
	// A dead address surfaces a dial error, not a hang.
	if _, err := Dial("127.0.0.1:1", ClientConfig{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Error("dial to a dead port must fail")
	}
}
