package palermo

import (
	"bytes"
	"sync"
	"testing"

	"palermo/internal/rng"
	"palermo/internal/security"
)

// TestServingLeafUniformityWithCachePrefetch is the live-path counterpart
// of TestSecurityEndToEnd: with the tree-top cache pinned and the
// batch-admission prefetch planner on, every shard's exposed leaf stream
// must remain statistically uniform under a skewed (Zipf) workload — the
// cache only absorbs traffic above a fixed level boundary and the planner
// only reorders when fetches are issued, so neither may leave a
// workload-shaped dent in the path selections.
func TestServingLeafUniformityWithCachePrefetch(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{
		Blocks: 1 << 12, Shards: 2, Seed: 11,
		PipelineDepth: 4, TreeTopLevels: 4, Prefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.EnableTraces()
	r := rng.New(5)
	z := rng.NewZipf(r, 1<<12, 0.99)
	ids := make([]uint64, 0, 8)
	for i := 0; i < 700; i++ {
		if r.Uint64()%10 == 0 {
			if err := st.Write(z.Next(), block(byte(i))); err != nil {
				t.Fatal(err)
			}
			continue
		}
		ids = ids[:0]
		for j := 0; j < 8; j++ {
			ids = append(ids, z.Next())
		}
		if _, err := st.ReadBatch(ids); err != nil {
			t.Fatal(err)
		}
	}
	traces := st.LeafTraces()
	tr := st.Traffic()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.TreeTopHits == 0 || tr.PrefetchUsed == 0 {
		t.Fatalf("features under audit never fired: %d tree-top hits, %d prefetches used",
			tr.TreeTopHits, tr.PrefetchUsed)
	}
	if len(traces) != 2 {
		t.Fatalf("recorded %d shard traces, want 2", len(traces))
	}
	for _, trace := range traces {
		if len(trace.Leaves) < 500 {
			t.Fatalf("shard %d recorded only %d leaf observations", trace.Shard, len(trace.Leaves))
		}
		leaf, err := security.AnalyzeLeaves(trace.Leaves, trace.NumLeaves, 32)
		if err != nil {
			t.Fatal(err)
		}
		if !leaf.Uniform(0.001) {
			t.Fatalf("shard %d leaf stream rejected as non-uniform with cache+prefetch on: %v",
				trace.Shard, leaf)
		}
	}
}

// TestShardedStorePrefetchDuplicateReads drives the dedup × prefetch
// interaction through the real engine under concurrency (run with -race):
// batches stuffed with duplicate hot ids, whose paths the planner
// prefetches, must still collapse each distinct id onto one engine access
// — dedup hits stay high, prefetches are claimed not leaked, and every
// waiter reads the freshest payload.
func TestShardedStorePrefetchDuplicateReads(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{
		Blocks: 1 << 10, Shards: 2, Seed: 3,
		PipelineDepth: 4, TreeTopLevels: 2, Prefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want := block(0x5A)
	if err := st.Write(42, want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(c + 100))
			ids := make([]uint64, 0, 16)
			for i := 0; i < 60; i++ {
				ids = ids[:0]
				for j := 0; j < 16; j++ {
					if j%2 == 0 {
						ids = append(ids, 42) // hot duplicate in every batch
					} else {
						ids = append(ids, r.Uint64n(1<<10))
					}
				}
				got, err := st.ReadBatch(ids)
				if err != nil {
					t.Error(err)
					return
				}
				for k, id := range ids {
					if id == 42 && !bytes.Equal(got[k], want) {
						t.Errorf("duplicate hot read %d returned a stale payload", k)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	ss := st.Stats()
	tr := st.Traffic()
	// Each 16-id batch carries 8 copies of id 42; at least those 7
	// duplicates per batch must dedup (4 clients × 60 batches × 7).
	if ss.DedupHits < 4*60*7 {
		t.Fatalf("dedup hits %d with prefetch on, want >= %d", ss.DedupHits, 4*60*7)
	}
	if tr.PrefetchUsed == 0 {
		t.Fatal("planner never delivered a used prefetch")
	}
	if tr.PrefetchIssued < tr.PrefetchUsed+tr.PrefetchStale {
		t.Fatalf("prefetch accounting leaked: issued %d < used %d + stale %d",
			tr.PrefetchIssued, tr.PrefetchUsed, tr.PrefetchStale)
	}
}
