package palermo

// Differential testing: every protocol engine — whatever its tree shape,
// eviction discipline, or bypass tricks — implements the same logical
// memory. Feeding the same operation sequence to all of them must produce
// identical read results, or one of the designs corrupts data. The same
// discipline extends up the stack: the network serving path
// (Client → wire → netserve → ShardedStore) must be indistinguishable
// from calling the store in-process, payload for payload and leaf for
// leaf (TestNetDifferentialEquivalence).

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"palermo/internal/baselines"
	"palermo/internal/oram"
	"palermo/internal/rng"
	"palermo/internal/shard"
)

func allEngines(t *testing.T, lines uint64) map[string]oram.Engine {
	t.Helper()
	engines := make(map[string]oram.Engine)

	pathCfg := oram.DefaultPathConfig()
	pathCfg.NLines = lines
	path, err := oram.NewPath(pathCfg)
	if err != nil {
		t.Fatal(err)
	}
	engines["PathORAM"] = path

	for name, cfgFn := range map[string]func() oram.RingConfig{
		"RingORAM-classic":   oram.DefaultRingConfig,
		"RingORAM-bandwidth": oram.BandwidthRingConfig,
		"Palermo":            oram.PalermoRingConfig,
	} {
		cfg := cfgFn()
		cfg.NLines = lines
		ring, err := oram.NewRing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = ring
	}

	page, err := baselines.NewPageORAM(lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	engines["PageORAM"] = page

	pro, err := baselines.NewPrORAM(lines, 4, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	engines["PrORAM"] = pro

	ir, err := baselines.NewIRORAM(lines, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	engines["IR-ORAM"] = ir

	return engines
}

func TestProtocolFunctionalEquivalence(t *testing.T) {
	const lines = 1 << 13
	engines := allEngines(t, lines)

	// A mixed op sequence with heavy reuse so stash hits, evictions,
	// reshuffles, prefetch groups, and bypasses all trigger.
	r := rng.New(1234)
	type op struct {
		pa    uint64
		write bool
		val   uint64
	}
	ops := make([]op, 4000)
	for i := range ops {
		ops[i] = op{
			pa:    r.Uint64n(lines / 4), // quarter of the space: strong reuse
			write: r.Float64() < 0.4,
			val:   r.Uint64(),
		}
	}

	ref := make(map[uint64]uint64)
	expected := make([]uint64, len(ops)) // expected read results (0 if write)
	for i, o := range ops {
		if o.write {
			ref[o.pa] = o.val
		} else {
			expected[i] = ref[o.pa]
		}
	}

	for name, e := range engines {
		for i, o := range ops {
			plan := e.Access(o.pa, o.write, o.val)
			if !o.write && plan.Val != expected[i] {
				t.Fatalf("%s diverged at op %d: read PA %d = %d, want %d",
					name, i, o.pa, plan.Val, expected[i])
			}
		}
		// Every engine must also hold the stash bound through the sequence.
		for l := 0; l < e.Levels(); l++ {
			if m := e.StashMax(l); m > 1024 {
				t.Fatalf("%s level %d stash peaked at %d", name, l, m)
			}
		}
	}
}

// storeAPI is the operation surface shared by *ShardedStore and *Client:
// the differential net test drives both through it with one recorded
// sequence.
type storeAPI interface {
	Read(id uint64) ([]byte, error)
	Write(id uint64, data []byte) error
	ReadBatch(ids []uint64) ([][]byte, error)
	WriteBatch(ids []uint64, blocks [][]byte) error
}

// netOp is one recorded operation of the differential sequence.
type netOp struct {
	kind   int // 0 read, 1 write, 2 readBatch, 3 writeBatch
	id     uint64
	ids    []uint64
	blocks [][]byte
}

// recordNetOps builds a deterministic mixed sequence with id reuse and
// intra-batch duplicates, so stash hits, dedup fan-outs, and per-shard
// batching all trigger on both sides.
func recordNetOps(blocks uint64, n int) []netOp {
	r := rng.New(20250729)
	ops := make([]netOp, n)
	for i := range ops {
		switch r.Uint64n(4) {
		case 0:
			ops[i] = netOp{kind: 0, id: r.Uint64n(blocks / 4)}
		case 1:
			ops[i] = netOp{kind: 1, id: r.Uint64n(blocks / 4)}
		case 2:
			ids := make([]uint64, 1+r.Uint64n(8))
			for j := range ids {
				if j > 0 && r.Uint64n(3) == 0 {
					ids[j] = ids[j-1] // duplicate: exercises batch dedup
				} else {
					ids[j] = r.Uint64n(blocks / 4)
				}
			}
			ops[i] = netOp{kind: 2, ids: ids}
		default:
			ids := make([]uint64, 1+r.Uint64n(4))
			bls := make([][]byte, len(ids))
			for j := range ids {
				ids[j] = r.Uint64n(blocks / 4)
				bls[j] = block(byte(r.Uint64()))
			}
			ops[i] = netOp{kind: 3, ids: ids, blocks: bls}
		}
	}
	return ops
}

// playNetOps runs the sequence serially and returns every read payload in
// order. Serial submission means both sides see identical per-shard
// request subsequences, so the §5 determinism contract forces identical
// leaf traces if the layers in between add nothing.
func playNetOps(t *testing.T, api storeAPI, ops []netOp) [][]byte {
	t.Helper()
	return playNetOpsFrom(t, api, ops, 0)
}

// playNetOpsFrom plays a tail of a recorded sequence: base is the index
// of ops[0] in the full recording, so write payloads (derived from the
// global op index) match a reference run that played the whole sequence.
// The cluster differential test uses it to split one sequence around a
// live migration.
func playNetOpsFrom(t *testing.T, api storeAPI, ops []netOp, base int) [][]byte {
	t.Helper()
	var payloads [][]byte
	for i, op := range ops {
		i += base
		switch op.kind {
		case 0:
			data, err := api.Read(op.id)
			if err != nil {
				t.Fatalf("op %d read: %v", i, err)
			}
			payloads = append(payloads, data)
		case 1:
			if err := api.Write(op.id, block(byte(i))); err != nil {
				t.Fatalf("op %d write: %v", i, err)
			}
		case 2:
			got, err := api.ReadBatch(op.ids)
			if err != nil {
				t.Fatalf("op %d readBatch: %v", i, err)
			}
			payloads = append(payloads, got...)
		default:
			if err := api.WriteBatch(op.ids, op.blocks); err != nil {
				t.Fatalf("op %d writeBatch: %v", i, err)
			}
		}
	}
	return payloads
}

// TestNetDifferentialEquivalence runs one recorded op sequence against an
// in-process ShardedStore and against an identically-seeded store behind
// Client → wire → netserve over a loopback socket, and demands the two
// paths be indistinguishable: byte-identical read payloads, identical
// service op counts, and identical per-shard leaf traces. Run under
// -race, this is also the concurrency audit of the whole network stack.
func TestNetDifferentialEquivalence(t *testing.T) {
	const blocks = 1 << 12
	const shards = 3
	cfg := ShardedStoreConfig{Blocks: blocks, Shards: shards, Seed: 77}
	ops := recordNetOps(blocks, 400)

	// In-process reference run.
	local, err := NewShardedStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range local.shards {
		sh.EnableTrace()
	}
	wantPayloads := playNetOps(t, local, ops)
	wantStats := local.Stats()
	if err := local.Close(); err != nil {
		t.Fatal(err)
	}

	// Network run: same store geometry behind a loopback server.
	remoteStore, err := NewShardedStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range remoteStore.shards {
		sh.EnableTrace()
	}
	srv, err := NewServer(remoteStore, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Blocks() != blocks || cl.Shards() != shards {
		t.Fatalf("handshake geometry: %d blocks, %d shards", cl.Blocks(), cl.Shards())
	}
	gotPayloads := playNetOps(t, cl, ops)
	gotStats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
	if err := remoteStore.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte-identical payloads, op for op.
	if len(gotPayloads) != len(wantPayloads) {
		t.Fatalf("network path returned %d read payloads, in-process %d", len(gotPayloads), len(wantPayloads))
	}
	for i := range wantPayloads {
		if !bytes.Equal(gotPayloads[i], wantPayloads[i]) {
			t.Fatalf("read payload %d diverged between in-process and network paths", i)
		}
	}
	// Identical service op counts (the Stats op itself is not counted).
	if gotStats.Reads != wantStats.Reads || gotStats.Writes != wantStats.Writes ||
		gotStats.DedupHits != wantStats.DedupHits {
		t.Fatalf("stats diverged: net %d/%d/%d, in-process %d/%d/%d",
			gotStats.Reads, gotStats.Writes, gotStats.DedupHits,
			wantStats.Reads, wantStats.Writes, wantStats.DedupHits)
	}
	// Identical per-shard engine traces: same ops, same order, same leaves.
	for i := range local.shards {
		want, got := local.shards[i].Trace(), remoteStore.shards[i].Trace()
		if len(want.Ops) == 0 {
			t.Fatalf("shard %d served nothing", i)
		}
		if len(got.Ops) != len(want.Ops) {
			t.Fatalf("shard %d: net path served %d engine ops, in-process %d", i, len(got.Ops), len(want.Ops))
		}
		for j := range want.Ops {
			if got.Ops[j] != want.Ops[j] {
				t.Fatalf("shard %d: op %d diverged (%+v != %+v)", i, j, got.Ops[j], want.Ops[j])
			}
			if got.Leaves[j] != want.Leaves[j] {
				t.Fatalf("shard %d: leaf %d diverged (%d != %d)", i, j, got.Leaves[j], want.Leaves[j])
			}
		}
	}
}

// TestPipelinedVsSerialEquivalence is the pipeline's determinism
// contract: the same recorded op sequence through a ShardedStore at
// PipelineDepth 1 (the serial executor) and at the default depth must be
// indistinguishable — byte-identical read payloads, identical service op
// counts and dedup hits, and identical per-shard engine traces (same ops,
// same order, same exposed leaves). The crypto pool rides the same
// contract: CryptoWorkers 1 and 4 offload seal/unseal to worker
// goroutines, and nothing observable may move. Run under -race this also
// audits the worker/I/O-goroutine/crypto-pool split.
func TestPipelinedVsSerialEquivalence(t *testing.T) {
	const blocks = 1 << 12
	const shards = 3
	ops := recordNetOps(blocks, 400)

	play := func(depth, cryptoWorkers int) (payloads [][]byte, stats ServiceStats, traces []*shard.Trace) {
		t.Helper()
		cfg := ShardedStoreConfig{
			Blocks: blocks, Shards: shards, Seed: 77,
			PipelineDepth: depth, CryptoWorkers: cryptoWorkers,
		}
		st, err := NewShardedStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range st.shards {
			sh.EnableTrace()
		}
		payloads = playNetOps(t, st, ops)
		stats = st.Stats()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		for _, sh := range st.shards {
			traces = append(traces, sh.Trace())
		}
		return payloads, stats, traces
	}

	wantPayloads, wantStats, wantTraces := play(1, 0)
	for _, tc := range []struct {
		depth, workers int
	}{
		{0, 0}, // 0 = the default depth (2), inline crypto
		{0, 1}, // single crypto worker: ordering without parallelism
		{0, 4}, // worker pool (capped at GOMAXPROCS internally)
	} {
		name := fmt.Sprintf("depth=%d,cryptoWorkers=%d", tc.depth, tc.workers)
		gotPayloads, gotStats, gotTraces := play(tc.depth, tc.workers)

		if len(gotPayloads) != len(wantPayloads) {
			t.Fatalf("%s: returned %d read payloads, serial %d", name, len(gotPayloads), len(wantPayloads))
		}
		for i := range wantPayloads {
			if !bytes.Equal(gotPayloads[i], wantPayloads[i]) {
				t.Fatalf("%s: read payload %d diverged from the serial executor", name, i)
			}
		}
		if gotStats.Reads != wantStats.Reads || gotStats.Writes != wantStats.Writes ||
			gotStats.DedupHits != wantStats.DedupHits {
			t.Fatalf("%s: stats diverged: %d/%d/%d, serial %d/%d/%d",
				name, gotStats.Reads, gotStats.Writes, gotStats.DedupHits,
				wantStats.Reads, wantStats.Writes, wantStats.DedupHits)
		}
		for i := range wantTraces {
			want, got := wantTraces[i], gotTraces[i]
			if len(want.Ops) == 0 {
				t.Fatalf("shard %d served nothing", i)
			}
			if len(got.Ops) != len(want.Ops) {
				t.Fatalf("%s: shard %d served %d engine ops, serial %d", name, i, len(got.Ops), len(want.Ops))
			}
			for j := range want.Ops {
				if got.Ops[j] != want.Ops[j] {
					t.Fatalf("%s: shard %d: op %d diverged (%+v != %+v)", name, i, j, got.Ops[j], want.Ops[j])
				}
				if got.Leaves[j] != want.Leaves[j] {
					t.Fatalf("%s: shard %d: leaf %d diverged (%d != %d)", name, i, j, got.Leaves[j], want.Leaves[j])
				}
			}
		}
	}
}

// TestPipelinedDurableEquivalence extends the contract through the
// durable backends and across a restart: identical workloads at depth 1
// and depth 4 (small CheckpointEvery and GroupCommit so compactions and
// commits fire mid-run), across every engine in {wal, blockfile} and
// CryptoWorkers in {0, 1, 4}, must leave directories that recover to
// identical stores — same payloads, same traffic counters, and identical
// engine behavior for a post-recovery op sequence. The engine and worker
// count may change what the bytes on disk look like, never what they
// mean.
func TestPipelinedDurableEquivalence(t *testing.T) {
	const blocks = 1 << 10
	run := func(engine string, depth, cryptoWorkers, slotCache int) (dir string) {
		t.Helper()
		dir = t.TempDir()
		st, err := NewStore(StoreConfig{
			Blocks: blocks, Engine: engine, Dir: dir, Seed: 9,
			CheckpointEvery: 32, GroupCommit: 4,
			PipelineDepth: depth, CryptoWorkers: cryptoWorkers,
			SlotCacheBytes: slotCache,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(321)
		for i := 0; i < 300; i++ {
			id := r.Uint64n(blocks / 2)
			if r.Uint64n(3) == 0 {
				if _, err := st.Read(id); err != nil {
					t.Fatal(err)
				}
			} else if err := st.Write(id, block(byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	reopen := func(dir, engine string, depth, slotCache int) (rep TrafficReport, payloads [][]byte) {
		t.Helper()
		st, err := NewStore(StoreConfig{
			Blocks: blocks, Engine: engine, Dir: dir, Seed: 9, PipelineDepth: depth,
			SlotCacheBytes: slotCache,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Post-recovery ops keep exercising the recovered engine state.
		for i := 0; i < 50; i++ {
			data, err := st.Read(uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			payloads = append(payloads, data)
		}
		rep = st.Traffic()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return rep, payloads
	}

	serialDir := run(BackendWAL, 1, 0, 0)
	wantRep, wantPayloads := reopen(serialDir, BackendWAL, 1, 0)
	for _, tc := range []struct {
		engine    string
		workers   int
		slotCache int
	}{
		{BackendWAL, 0, 0},
		{BackendWAL, 1, 0},
		{BackendWAL, 4, 0},
		{BackendBlockfile, 0, 0},
		{BackendBlockfile, 1, 0},
		{BackendBlockfile, 4, 0},
		// Slot read cache on: the blockfile serves hot slots from memory.
		// Byte-identical payloads and protocol counters; only the
		// SlotCacheHits/Misses telemetry may be nonzero.
		{BackendBlockfile, 0, 64 << 10},
		{BackendBlockfile, 4, 4 << 10}, // tiny budget: CLOCK eviction churns mid-run
	} {
		engine, workers := tc.engine, tc.workers
		name := fmt.Sprintf("engine=%s,cryptoWorkers=%d,slotCache=%d", engine, workers, tc.slotCache)
		dir := run(engine, 4, workers, tc.slotCache)
		gotRep, gotPayloads := reopen(dir, engine, 4, tc.slotCache)
		if tc.slotCache > 0 {
			// The cache is pure telemetry at the protocol level: zero the
			// counters for the struct compare, but demand the cache actually
			// served something (otherwise the row tests nothing).
			if gotRep.SlotCacheHits+gotRep.SlotCacheMisses == 0 {
				t.Fatalf("%s: slot cache enabled but never touched", name)
			}
			gotRep.SlotCacheHits, gotRep.SlotCacheMisses = 0, 0
		}
		if wantRep != gotRep {
			t.Fatalf("%s: recovered traffic diverged:\n serial wal %+v\n got        %+v", name, wantRep, gotRep)
		}
		for i := range wantPayloads {
			if !bytes.Equal(wantPayloads[i], gotPayloads[i]) {
				t.Fatalf("%s: post-recovery read %d diverged from the serial WAL baseline", name, i)
			}
		}
		// Cross-recovery: a serial store must be able to reopen the
		// pipelined executor's directory (the on-disk contract is
		// shared). Counters keep growing across reopens, so compare the
		// stable parts: the write count and the logical payloads. Reopening
		// a cache-written directory with the cache off (and vice versa)
		// must be equally lossless: the cache never touches the format.
		crossRep, crossPayloads := reopen(dir, engine, 1, 0)
		if crossRep.Writes != wantRep.Writes {
			t.Fatalf("%s: cross-depth recovery lost writes: want %d, got %d", name, wantRep.Writes, crossRep.Writes)
		}
		for i := range wantPayloads {
			if !bytes.Equal(wantPayloads[i], crossPayloads[i]) {
				t.Fatalf("%s: cross-depth read %d diverged", name, i)
			}
		}
	}
}

// TestCachePrefetchEquivalence is the protocol-neutrality contract for
// this PR's serving-path optimizations: the same recorded op sequence
// through a baseline pipelined ShardedStore and through every tree-top ×
// prefetch configuration must be indistinguishable at the protocol level
// — byte-identical read payloads, identical service op counts, and
// identical per-shard engine traces (same ops, same order, same exposed
// leaves). Only the DRAM traffic split may differ: cached levels move
// lines from DRAMReads/DRAMWrites into TreeTopHits, and the accounting
// identity (emitted + absorbed == baseline) must hold exactly.
func TestCachePrefetchEquivalence(t *testing.T) {
	const blocks = 1 << 12
	const shards = 3
	ops := recordNetOps(blocks, 400)

	play := func(treetop int, prefetch bool, depth int, posmap bool) (payloads [][]byte, stats ServiceStats, traces []*shard.Trace, rep TrafficReport) {
		t.Helper()
		st, err := NewShardedStore(ShardedStoreConfig{
			Blocks: blocks, Shards: shards, Seed: 77,
			PipelineDepth: 4, TreeTopLevels: treetop,
			Prefetch: prefetch, PrefetchDepth: depth, PosmapPrefetch: posmap,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range st.shards {
			sh.EnableTrace()
		}
		payloads = playNetOps(t, st, ops)
		stats = st.Stats()
		rep = st.Traffic()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		for _, sh := range st.shards {
			traces = append(traces, sh.Trace())
		}
		return payloads, stats, traces, rep
	}

	wantPayloads, wantStats, wantTraces, wantRep := play(0, false, 0, false)
	baselineMoved := wantRep.DRAMReads + wantRep.DRAMWrites + wantRep.TreeTopHits
	for _, tc := range []struct {
		treetop  int
		prefetch bool
		depth    int
		posmap   bool
	}{
		{4, false, 0, false},
		{0, true, 0, false},
		{6, true, 0, false},
		// Deep planner rows: look-ahead across queued batches, with and
		// without posmap-group sibling announces. The planner may only
		// move backend Gets earlier — never a leaf, payload, or count.
		{0, true, 4, false},
		{6, true, 4, true},
		{0, true, 64, true}, // max depth: backlog deeper than the queue ever gets
	} {
		gotPayloads, gotStats, gotTraces, gotRep := play(tc.treetop, tc.prefetch, tc.depth, tc.posmap)
		name := fmt.Sprintf("treetop=%d,prefetch=%v,depth=%d,posmap=%v",
			tc.treetop, tc.prefetch, tc.depth, tc.posmap)
		for i := range wantPayloads {
			if !bytes.Equal(gotPayloads[i], wantPayloads[i]) {
				t.Fatalf("%s: read payload %d diverged from baseline", name, i)
			}
		}
		if gotStats.Reads != wantStats.Reads || gotStats.Writes != wantStats.Writes ||
			gotStats.DedupHits != wantStats.DedupHits {
			t.Fatalf("%s: service counts diverged: %d/%d/%d vs baseline %d/%d/%d",
				name, gotStats.Reads, gotStats.Writes, gotStats.DedupHits,
				wantStats.Reads, wantStats.Writes, wantStats.DedupHits)
		}
		for i := range wantTraces {
			want, got := wantTraces[i], gotTraces[i]
			if len(got.Ops) != len(want.Ops) {
				t.Fatalf("%s: shard %d served %d engine ops, baseline %d", name, i, len(got.Ops), len(want.Ops))
			}
			for j := range want.Ops {
				if got.Ops[j] != want.Ops[j] || got.Leaves[j] != want.Leaves[j] {
					t.Fatalf("%s: shard %d op %d diverged from baseline", name, i, j)
				}
			}
		}
		// Total protocol lines are invariant; only their DRAM/absorbed
		// split moves, and a deeper pinned top absorbs at least as much.
		if moved := gotRep.DRAMReads + gotRep.DRAMWrites + gotRep.TreeTopHits; moved != baselineMoved {
			t.Fatalf("%s: protocol line total %d != baseline %d (absorption must be exact)",
				name, moved, baselineMoved)
		}
		// A pinned top absorbs at least what the byte-budget default does
		// (at this small tree the budget already covers every level, so
		// equality is the expected ceiling — the shrink curve itself is
		// TestTreeTopLevelsNeutral's job).
		if tc.treetop >= 6 && gotRep.TreeTopHits < wantRep.TreeTopHits {
			t.Fatalf("%s: pinned top absorbed %d lines, baseline budget absorbed %d",
				name, gotRep.TreeTopHits, wantRep.TreeTopHits)
		}
		if tc.prefetch && gotRep.PrefetchUsed == 0 {
			t.Fatalf("%s: prefetch enabled but never used", name)
		}
	}
}

// TestDurableMixedConfigReopen: the durable format is config-neutral. A
// directory written under one tree-top/prefetch configuration must reopen
// bit-exact under any other — same recovered payloads, same recovered
// engine behavior for a post-recovery op sequence — because neither
// feature touches protocol state, only how its traffic is served.
func TestDurableMixedConfigReopen(t *testing.T) {
	const blocks = 1 << 10
	dir := t.TempDir()
	st, err := NewShardedStore(ShardedStoreConfig{
		Blocks: blocks, Shards: 2, Seed: 13,
		Backend: BackendWAL, Dir: dir, CheckpointEvery: 32, GroupCommit: 4,
		PipelineDepth: 4, TreeTopLevels: 4, Prefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	wrote := make(map[uint64]byte)
	for i := 0; i < 300; i++ {
		id := r.Uint64n(blocks)
		b := byte(i)
		if err := st.Write(id, block(b)); err != nil {
			t.Fatal(err)
		}
		wrote[id] = b
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reopen := func(treetop int, prefetch bool, depth, prefetchDepth int, posmap bool) [][]byte {
		t.Helper()
		st, err := NewShardedStore(ShardedStoreConfig{
			Blocks: blocks, Shards: 2, Seed: 13,
			Backend: BackendWAL, Dir: dir,
			PipelineDepth: depth, TreeTopLevels: treetop,
			Prefetch: prefetch, PrefetchDepth: prefetchDepth, PosmapPrefetch: posmap,
		})
		if err != nil {
			t.Fatal(err)
		}
		for id, b := range wrote {
			got, err := st.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, block(b)) {
				t.Fatalf("treetop=%d prefetch=%v: block %d lost its payload across reopen", treetop, prefetch, id)
			}
		}
		// A deterministic post-recovery sequence probes the recovered
		// engine state beyond the stamped blocks.
		var payloads [][]byte
		for i := uint64(0); i < 64; i++ {
			data, err := st.Read(i)
			if err != nil {
				t.Fatal(err)
			}
			payloads = append(payloads, data)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return payloads
	}

	want := reopen(0, false, 1, 0, false) // serial baseline reopens the optimized dir
	for _, tc := range []struct {
		treetop       int
		prefetch      bool
		depth         int
		prefetchDepth int
		posmap        bool
	}{
		{4, true, 4, 0, false},
		{6, false, 2, 0, false},
		// Deep planner reopens: look-ahead and posmap-group announces are
		// serving-path-only and must leave recovery untouched.
		{4, true, 4, 4, true},
		{0, true, 2, 8, false},
	} {
		got := reopen(tc.treetop, tc.prefetch, tc.depth, tc.prefetchDepth, tc.posmap)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("treetop=%d prefetch=%v prefetchDepth=%d: post-recovery read %d diverged",
					tc.treetop, tc.prefetch, tc.prefetchDepth, i)
			}
		}
	}

	// Blockfile half: a directory written with the slot read cache on must
	// reopen bit-exact with the cache off, and vice versa — the cache holds
	// only copies of committed ciphertext and never touches the format.
	bfDir := t.TempDir()
	bfReopen := func(slotCache int, stamp bool) [][]byte {
		t.Helper()
		st, err := NewShardedStore(ShardedStoreConfig{
			Blocks: blocks, Shards: 2, Seed: 13,
			Backend: BackendBlockfile, Dir: bfDir, CheckpointEvery: 32, GroupCommit: 4,
			PipelineDepth: 4, SlotCacheBytes: slotCache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stamp {
			for id, b := range wrote {
				if err := st.Write(id, block(b)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var payloads [][]byte
		for i := uint64(0); i < 64; i++ {
			data, err := st.Read(i)
			if err != nil {
				t.Fatal(err)
			}
			payloads = append(payloads, data)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return payloads
	}
	bfWant := bfReopen(64<<10, true) // written with cache on
	for _, slotCache := range []int{0, 64 << 10, 4 << 10} {
		got := bfReopen(slotCache, false)
		for i := range bfWant {
			if !bytes.Equal(got[i], bfWant[i]) {
				t.Fatalf("blockfile slotCache=%d: post-recovery read %d diverged", slotCache, i)
			}
		}
	}
}

// TestDifferentialTrafficDiversity sanity-checks that the engines really
// are different designs: their total traffic for the same op sequence must
// differ (otherwise the equivalence test proves nothing).
func TestDifferentialTrafficDiversity(t *testing.T) {
	const lines = 1 << 13
	engines := allEngines(t, lines)
	r := rng.New(7)
	traffic := make(map[string]int)
	for name, e := range engines {
		total := 0
		rr := rng.New(7)
		_ = r
		for i := 0; i < 300; i++ {
			p := e.Access(rr.Uint64n(lines), false, 0)
			total += p.Reads() + p.Writes()
		}
		traffic[name] = total
	}
	seen := map[int]string{}
	distinct := 0
	for name, tr := range traffic {
		if _, dup := seen[tr]; !dup {
			distinct++
		}
		seen[tr] = name
	}
	if distinct < 4 {
		t.Fatalf("only %d distinct traffic profiles across engines: %v", distinct, traffic)
	}
}
