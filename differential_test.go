package palermo

// Differential testing: every protocol engine — whatever its tree shape,
// eviction discipline, or bypass tricks — implements the same logical
// memory. Feeding the same operation sequence to all of them must produce
// identical read results, or one of the designs corrupts data.

import (
	"testing"

	"palermo/internal/baselines"
	"palermo/internal/oram"
	"palermo/internal/rng"
)

func allEngines(t *testing.T, lines uint64) map[string]oram.Engine {
	t.Helper()
	engines := make(map[string]oram.Engine)

	pathCfg := oram.DefaultPathConfig()
	pathCfg.NLines = lines
	path, err := oram.NewPath(pathCfg)
	if err != nil {
		t.Fatal(err)
	}
	engines["PathORAM"] = path

	for name, cfgFn := range map[string]func() oram.RingConfig{
		"RingORAM-classic":   oram.DefaultRingConfig,
		"RingORAM-bandwidth": oram.BandwidthRingConfig,
		"Palermo":            oram.PalermoRingConfig,
	} {
		cfg := cfgFn()
		cfg.NLines = lines
		ring, err := oram.NewRing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = ring
	}

	page, err := baselines.NewPageORAM(lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	engines["PageORAM"] = page

	pro, err := baselines.NewPrORAM(lines, 4, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	engines["PrORAM"] = pro

	ir, err := baselines.NewIRORAM(lines, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	engines["IR-ORAM"] = ir

	return engines
}

func TestProtocolFunctionalEquivalence(t *testing.T) {
	const lines = 1 << 13
	engines := allEngines(t, lines)

	// A mixed op sequence with heavy reuse so stash hits, evictions,
	// reshuffles, prefetch groups, and bypasses all trigger.
	r := rng.New(1234)
	type op struct {
		pa    uint64
		write bool
		val   uint64
	}
	ops := make([]op, 4000)
	for i := range ops {
		ops[i] = op{
			pa:    r.Uint64n(lines / 4), // quarter of the space: strong reuse
			write: r.Float64() < 0.4,
			val:   r.Uint64(),
		}
	}

	ref := make(map[uint64]uint64)
	expected := make([]uint64, len(ops)) // expected read results (0 if write)
	for i, o := range ops {
		if o.write {
			ref[o.pa] = o.val
		} else {
			expected[i] = ref[o.pa]
		}
	}

	for name, e := range engines {
		for i, o := range ops {
			plan := e.Access(o.pa, o.write, o.val)
			if !o.write && plan.Val != expected[i] {
				t.Fatalf("%s diverged at op %d: read PA %d = %d, want %d",
					name, i, o.pa, plan.Val, expected[i])
			}
		}
		// Every engine must also hold the stash bound through the sequence.
		for l := 0; l < e.Levels(); l++ {
			if m := e.StashMax(l); m > 1024 {
				t.Fatalf("%s level %d stash peaked at %d", name, l, m)
			}
		}
	}
}

// TestDifferentialTrafficDiversity sanity-checks that the engines really
// are different designs: their total traffic for the same op sequence must
// differ (otherwise the equivalence test proves nothing).
func TestDifferentialTrafficDiversity(t *testing.T) {
	const lines = 1 << 13
	engines := allEngines(t, lines)
	r := rng.New(7)
	traffic := make(map[string]int)
	for name, e := range engines {
		total := 0
		rr := rng.New(7)
		_ = r
		for i := 0; i < 300; i++ {
			p := e.Access(rr.Uint64n(lines), false, 0)
			total += p.Reads() + p.Writes()
		}
		traffic[name] = total
	}
	seen := map[int]string{}
	distinct := 0
	for name, tr := range traffic {
		if _, dup := seen[tr]; !dup {
			distinct++
		}
		seen[tr] = name
	}
	if distinct < 4 {
		t.Fatalf("only %d distinct traffic profiles across engines: %v", distinct, traffic)
	}
}
