package palermo

// Server exposes a ShardedStore over TCP speaking the palermo wire
// protocol, so remote clients (palermo.Client, cmd/palermo-load -addr)
// drive the same sharded service path an in-process caller does.
//
//	st, _ := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 18, Shards: 4})
//	srv, _ := palermo.NewServer(st, palermo.ServerConfig{})
//	go srv.ListenAndServe("127.0.0.1:7070")
//	...
//	srv.Close() // graceful: drains in-flight requests, then
//	st.Close()  // checkpoint + release the store
//
// The heavy lifting lives in internal/netserve (per-connection
// reader/writer goroutines, pipelining, bounded in-flight windows,
// graceful drain); this wrapper adapts the store and validates limits.
// DESIGN.md §8 describes the wire format and why the network layer
// observes only the §VI adversary's view.

import (
	"fmt"
	"net"
	"time"

	"palermo/internal/netserve"
	"palermo/internal/wire"
)

// The wire protocol's block granularity is pinned to the store's; this
// fails to compile if they ever drift.
var _ [0]struct{} = [wire.BlockBytes - BlockSize]struct{}{}

// ErrServerClosed is returned by Server.Serve/ListenAndServe after Close.
var ErrServerClosed = netserve.ErrServerClosed

// ServerConfig tunes the network serving layer. The zero value uses the
// defaults.
type ServerConfig struct {
	// MaxInFlight bounds each connection's outstanding requests. When the
	// window is full the server stops reading that connection, so TCP flow
	// control pushes back on the client — the socket extension of the
	// shard queues' back-pressure. Default 64.
	MaxInFlight int
	// MaxBatch caps the operations one batch frame may carry; larger
	// batches are rejected with a typed error, not served. Default 4096.
	MaxBatch int
	// IdleTimeout closes connections that send nothing for this long
	// (0 = never).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write so a stalled client cannot
	// wedge a connection (default 30s).
	WriteTimeout time.Duration
}

// Server serves one ShardedStore over TCP. Closing the Server does not
// close the store: drain the server first, then close the store.
type Server struct {
	ns *netserve.Server
}

// NewServer validates cfg and builds a server over st. The store must
// outlive the server; requests arriving while the store is closing are
// answered with a typed closed status that clients map to ErrClosed.
func NewServer(st *ShardedStore, cfg ServerConfig) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("palermo: NewServer requires a store")
	}
	ns, err := netserve.New(serverStore{st}, netserve.Config{
		MaxInFlight:  cfg.MaxInFlight,
		MaxBatch:     cfg.MaxBatch,
		IdleTimeout:  cfg.IdleTimeout,
		WriteTimeout: cfg.WriteTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("palermo: %w", err)
	}
	return &Server{ns: ns}, nil
}

// Serve accepts connections on ln until Close, then returns
// ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error { return s.ns.Serve(ln) }

// ListenAndServe listens on the TCP address and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("palermo: %w", err)
	}
	return s.ns.Serve(ln)
}

// Addr returns the serving address once Serve/ListenAndServe has bound a
// listener (nil before).
func (s *Server) Addr() net.Addr { return s.ns.Addr() }

// Close gracefully shuts the server down: stop accepting, let every
// in-flight request complete and its response flush, then close all
// connections. Idempotent.
func (s *Server) Close() error { return s.ns.Close() }

// serverStore adapts ShardedStore to the netserve.Store interface,
// folding the service stats, traffic counters, and store geometry into
// the single wire snapshot the Stats op returns.
type serverStore struct {
	st *ShardedStore
}

func (a serverStore) Read(id uint64) ([]byte, error)  { return a.st.Read(id) }
func (a serverStore) Write(id uint64, d []byte) error { return a.st.Write(id, d) }
func (a serverStore) ReadBatch(ids []uint64) ([][]byte, error) {
	return a.st.ReadBatch(ids)
}
func (a serverStore) WriteBatch(ids []uint64, blocks [][]byte) error {
	return a.st.WriteBatch(ids, blocks)
}

func (a serverStore) Stats() wire.Stats {
	ss := a.st.Stats()
	tr := a.st.Traffic()
	return wire.Stats{
		Blocks:      a.st.Blocks(),
		Shards:      uint32(a.st.Shards()),
		Reads:       ss.Reads,
		Writes:      ss.Writes,
		DedupHits:   ss.DedupHits,
		Sheds:       ss.Sheds,
		ReadLat:     toWireLatency(ss.ReadLat),
		WriteLat:    toWireLatency(ss.WriteLat),
		QueueLat:    toWireLatency(ss.QueueLat),
		ExecLat:     toWireLatency(ss.ExecLat),
		EngineReads: tr.Reads, EngineWrites: tr.Writes,
		DRAMReads: tr.DRAMReads, DRAMWrites: tr.DRAMWrites,
		StashPeak:      uint32(tr.StashPeak),
		TreeTopHits:    tr.TreeTopHits,
		PrefetchIssued: tr.PrefetchIssued, PrefetchUsed: tr.PrefetchUsed, PrefetchStale: tr.PrefetchStale,
		// A standalone server has no placement: epoch 0, every shard owned.
		Epoch: 0, FirstShard: 0, OwnedShards: uint32(a.st.Shards()),
	}
}

func toWireLatency(l LatencySummary) wire.Latency {
	return wire.Latency{N: l.N, MeanUs: l.MeanUs, P50Us: l.P50Us, P99Us: l.P99Us}
}
